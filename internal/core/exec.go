package core

import (
	"errors"
	"fmt"
	"sort"

	"fragdb/internal/fragments"
	"fragdb/internal/history"
	"fragdb/internal/lock"
	"fragdb/internal/netsim"
	"fragdb/internal/trace"
	"fragdb/internal/txn"
)

// Submit schedules a transaction for execution at this node. The done
// callback (optional) runs when the transaction commits or aborts.
//
// Update transactions are validated against the paper's rules at start
// time: the submitting agent must hold the fragment's token and this
// node must be the agent's home node (a user is "connected to at most
// one node at a time", Section 3.1).
func (n *Node) Submit(spec TxnSpec, done func(TxnResult)) {
	n.cl.stats.Offered.Add(1)
	n.cl.sched.After(0, func() { n.startTxn(spec, done) })
}

// origin resolves the accounting origin of a submission: the explicit
// client origin when the spec carries one, else the executing node.
// The labeled registry's per-(fragment, origin) matrix is what the
// placement controller reads, so forwarded operations must be charged
// to the node they entered at, not the home that executed them.
func (n *Node) origin(spec TxnSpec) netsim.NodeID {
	if spec.OriginSet {
		return spec.Origin
	}
	return n.id
}

// reject refuses a submission before execution begins.
func (n *Node) reject(spec TxnSpec, done func(TxnResult), err error) {
	n.cl.stats.Rejected.Add(1)
	n.cl.stats.Aborted.Add(1)
	n.cl.reg.IncAbort(spec.Fragment, n.origin(spec), "rejected")
	if n.tr.Enabled() {
		n.tr.Emit(trace.Event{Kind: trace.KReject, Frag: spec.Fragment,
			Err: err.Error(), Note: spec.Label})
	}
	if done != nil {
		done(TxnResult{
			Label: spec.Label, Err: err,
			Start: n.cl.sched.Now(), End: n.cl.sched.Now(),
		})
	}
}

func (n *Node) startTxn(spec TxnSpec, done func(TxnResult)) {
	if spec.Fragment != "" {
		if _, ok := n.cl.cat.Fragment(spec.Fragment); !ok {
			n.reject(spec, done, fmt.Errorf("core: unknown fragment %q", spec.Fragment))
			return
		}
		agent, ok := n.cl.tokens.Agent(spec.Fragment)
		if !ok || agent != spec.Agent {
			n.reject(spec, done, ErrNotAgent)
			return
		}
		home, ok := n.cl.tokens.Home(agent)
		if !ok || home != n.id {
			n.reject(spec, done, ErrNotHome)
			return
		}
		if n.stream(spec.Fragment).moveBlocked {
			n.reject(spec, done, ErrAgentMoving)
			return
		}
	}
	n.nextTxnSeq++
	t := &activeTxn{
		id:           txn.ID{Origin: n.id, Seq: n.nextTxnSeq},
		spec:         spec,
		node:         n,
		reqCh:        make(chan request),
		respCh:       make(chan response),
		writeVals:    make(map[fragments.ObjectID]any),
		remoteLocked: make(map[netsim.NodeID]bool),
		start:        n.cl.sched.Now(),
		done:         done,
	}
	n.active[t.id] = t
	if n.tr.Enabled() {
		n.tr.Emit(trace.Event{Kind: trace.KSubmit, Txn: t.id,
			Frag: spec.Fragment, Note: spec.Label})
	}
	timeout := spec.Timeout
	if timeout == 0 {
		timeout = n.cl.cfg.TxnTimeout
	}
	t.timeoutEv = n.cl.sched.After(timeout, func() { n.timeoutTxn(t) })
	go func() {
		err := spec.Program(&Tx{t: t})
		t.reqCh <- request{kind: reqDone, err: err}
	}()
	n.serve(t)
}

// serve consumes the transaction program's requests until one of them
// requires waiting (a lock queue, a remote lock, a scheduled response),
// at which point it returns; the continuation re-enters serve.
func (n *Node) serve(t *activeTxn) {
	for {
		req := <-t.reqCh
		if req.kind == reqDone {
			n.finishTxn(t, req.err)
			return
		}
		if t.finished {
			t.respCh <- response{err: causeOf(t)}
			continue
		}
		if t.poisoned != nil {
			t.respCh <- response{err: t.poisoned}
			continue
		}
		var cont bool
		switch req.kind {
		case reqThink:
			d := req.think
			n.cl.sched.After(d, func() {
				t.respCh <- response{}
				n.serve(t)
			})
			cont = false
		case reqRead:
			cont = n.handleRead(t, req)
		case reqWrite:
			cont = n.handleWrite(t, req)
		}
		if !cont {
			return
		}
	}
}

func causeOf(t *activeTxn) error {
	if t.poisoned != nil {
		return t.poisoned
	}
	return ErrAborted
}

// poison marks the transaction as doomed and responds to the current
// request with the cause. The program is expected to return the error.
func (n *Node) poison(t *activeTxn, err error) {
	t.poisoned = err
	t.respCh <- response{err: err}
}

// handleRead processes a read request. It returns true when serve
// should keep consuming requests, false when the response was deferred.
func (n *Node) handleRead(t *activeTxn, req request) bool {
	o := req.obj
	if v, ok := t.writeVals[o]; ok {
		// Read-your-own-writes from the transaction workspace.
		t.respCh <- response{val: v, known: true}
		return true
	}
	frag, ok := n.cl.cat.FragmentOf(o)
	if !ok {
		n.poison(t, fmt.Errorf("%w: %q", ErrUnknownObject, o))
		return true
	}
	foreign := t.spec.Fragment == "" || frag != t.spec.Fragment
	opt := n.cl.optionFor(t.spec.Fragment)
	// Partial replication: a node that does not hold the fragment must
	// read it remotely at the agent's home node, whatever the option.
	if !n.cl.IsReplica(frag, n.id) {
		if home, ok := n.cl.tokens.HomeOfFragment(frag); ok && home != n.id {
			n.cl.reg.IncRead(frag, n.origin(t.spec))
			t.pendingRemote = &req
			if n.tr.Enabled() {
				n.tr.Emit(trace.Event{Kind: trace.KRemoteLockWait, Txn: t.id,
					Obj: o, Peer: home, HasPeer: true})
			}
			n.cl.tr.Send(n.id, home, lockReqMsg{Txn: t.id, Object: o, From: n.id})
			return false
		}
	}
	// Section 4.2: update transactions must stay within the declared
	// read-access graph. Read-only transactions are exempt (the paper
	// allows them to violate the restrictions).
	if opt == AcyclicReads && t.spec.Fragment != "" && foreign {
		if !n.cl.rag.HasEdge(t.spec.Fragment, frag) {
			n.poison(t, fmt.Errorf("%w: %s reading %s", ErrUndeclaredRead, t.spec.Fragment, frag))
			return true
		}
	}
	// Section 4.1: reads outside the updated fragment acquire a lock at
	// the owning agent's home node and read the authoritative copy.
	if opt == ReadLocks && foreign {
		if home, ok := n.cl.tokens.HomeOfFragment(frag); ok && home != n.id {
			n.cl.reg.IncRead(frag, n.origin(t.spec))
			t.pendingRemote = &req
			if n.tr.Enabled() {
				n.tr.Emit(trace.Event{Kind: trace.KRemoteLockWait, Txn: t.id,
					Obj: o, Peer: home, HasPeer: true})
			}
			n.cl.tr.Send(n.id, home, lockReqMsg{Txn: t.id, Object: o, From: n.id})
			return false
		}
	}
	granted, err := n.locks.Acquire(t.id, o, lock.Shared)
	if err != nil {
		n.cl.stats.Deadlocks.Add(1)
		n.poison(t, ErrDeadlock)
		return true
	}
	if !granted {
		r := req
		t.parked = &r
		return false
	}
	n.finishRead(t, req)
	return false
}

// finishRead delivers the read value after the per-operation latency.
func (n *Node) finishRead(t *activeTxn, req request) {
	if reg := n.cl.reg; reg != nil {
		if f, ok := n.cl.cat.FragmentOf(req.obj); ok {
			reg.IncRead(f, n.origin(t.spec))
		}
	}
	n.cl.sched.After(n.cl.cfg.OpLatency, func() {
		if t.finished {
			t.respCh <- response{err: causeOf(t)}
			n.serve(t)
			return
		}
		ver, known := n.store.GetVersion(req.obj)
		obs := history.ReadObs{Object: req.obj}
		var val any
		if known {
			obs.FromTxn = ver.Txn
			obs.Pos = ver.Pos
			val = ver.Value
		}
		t.reads = append(t.reads, obs)
		t.respCh <- response{val: val, known: known}
		n.serve(t)
	})
}

// handleWrite processes a write request.
func (n *Node) handleWrite(t *activeTxn, req request) bool {
	if t.multi {
		// Multi-fragment transactions may write any EXISTING object;
		// the 2PC participants (the fragments' agents) authorize the
		// writes at prepare time.
		if _, ok := n.cl.cat.FragmentOf(req.obj); !ok {
			n.poison(t, fmt.Errorf("%w: %q (multi-fragment writes need existing objects)", ErrUnknownObject, req.obj))
			return true
		}
	} else {
		if t.spec.Fragment == "" {
			n.poison(t, ErrReadOnlyTxn)
			return true
		}
		// Initiation requirement: the written object must lie in the
		// transaction's fragment; new objects are created in it.
		if err := n.cl.cat.EnsureObject(t.spec.Fragment, req.obj); err != nil {
			n.poison(t, err)
			return true
		}
	}
	granted, err := n.locks.Acquire(t.id, req.obj, lock.Exclusive)
	if err != nil {
		n.cl.stats.Deadlocks.Add(1)
		n.poison(t, ErrDeadlock)
		return true
	}
	if !granted {
		r := req
		t.parked = &r
		return false
	}
	n.finishWrite(t, req)
	return false
}

// finishWrite buffers the write in the transaction workspace after the
// per-operation latency.
func (n *Node) finishWrite(t *activeTxn, req request) {
	if reg := n.cl.reg; reg != nil {
		f := t.spec.Fragment
		if ff, ok := n.cl.cat.FragmentOf(req.obj); ok {
			f = ff
		}
		reg.IncWrite(f, n.origin(t.spec))
	}
	n.cl.sched.After(n.cl.cfg.OpLatency, func() {
		if t.finished {
			t.respCh <- response{err: causeOf(t)}
			n.serve(t)
			return
		}
		if _, seen := t.writeVals[req.obj]; !seen {
			t.writeOrder = append(t.writeOrder, req.obj)
		}
		t.writeVals[req.obj] = req.val
		t.respCh <- response{}
		n.serve(t)
	})
}

// finishTxn handles the program's completion: commit or abort.
func (n *Node) finishTxn(t *activeTxn, progErr error) {
	if t.finalizedFlag {
		return // engine aborted it earlier; nothing more to do
	}
	if progErr == nil {
		progErr = t.poisoned
	}
	if progErr != nil {
		n.finalize(t, progErr, false)
		return
	}
	if t.multi && len(t.writeOrder) > 0 {
		n.startMulti(t)
		return
	}
	if t.spec.Fragment == "" || len(t.writeOrder) == 0 {
		// Read-only commit: record for auditing, release, done.
		n.cl.rec.Record(history.TxnRecord{
			ID: t.id, Type: n.agentType(t.spec.Agent), ReadOnly: true,
			Reads: t.reads, Node: n.id, Commit: n.cl.sched.Now(),
		})
		n.finalize(t, nil, true)
		return
	}
	writes := t.finalWrites()
	objs := make([]fragments.ObjectID, len(writes))
	for i, w := range writes {
		objs[i] = w.Object
	}
	if err := n.cl.cat.CheckInitiation(t.spec.Fragment, objs); err != nil {
		n.finalize(t, err, false)
		return
	}
	st := n.stream(t.spec.Fragment)
	pos := st.last.Next()
	if n.cl.IsCommutative(t.spec.Fragment) {
		// Commutative fragments need only uniqueness, not contiguity:
		// compose the position from the node id and local sequence so
		// agents at different homes never collide.
		pos = txn.FragPos{Seq: (uint64(n.id)+1)<<40 | t.id.Seq}
	}
	q := txn.Quasi{
		Txn: t.id, Fragment: t.spec.Fragment, Pos: pos,
		Home: n.id, Writes: writes, Stamp: n.cl.sched.Now(),
	}
	if n.cl.cfg.MajorityCommit {
		n.startMajority(t, q)
		return
	}
	n.commitLocal(t, q, true)
}

// finalWrites collapses the workspace to one write per object, in
// sorted object order.
func (t *activeTxn) finalWrites() []txn.WriteOp {
	objs := make([]fragments.ObjectID, len(t.writeOrder))
	copy(objs, t.writeOrder)
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	out := make([]txn.WriteOp, len(objs))
	for i, o := range objs {
		out[i] = txn.WriteOp{Object: o, Value: t.writeVals[o]}
	}
	return out
}

// commitLocal installs the update at the home node, records history,
// finalizes the transaction, and propagates. When viaQuasi is true the
// quasi-transaction itself is broadcast (normal mode); in majority mode
// the commit command is broadcast instead, remotes having buffered the
// quasi during the prepare phase.
func (n *Node) commitLocal(t *activeTxn, q txn.Quasi, viaQuasi bool) {
	st := n.stream(q.Fragment)
	if n.cl.IsCommutative(q.Fragment) {
		st.seen[t.id] = true
		if st.last.Less(q.Pos) {
			st.last = q.Pos
		}
	} else {
		st.last = q.Pos
	}
	st.appliedLog = append(st.appliedLog, q)
	n.store.Apply(t.id, q.Fragment, q.Pos, q.Writes, q.Stamp)
	n.cl.rec.Record(history.TxnRecord{
		ID: t.id, Type: q.Fragment, UpdateFragment: q.Fragment, Pos: q.Pos,
		Writes: sortedWriteObjects(q.Writes), Reads: t.reads,
		Node: n.id, Commit: n.cl.sched.Now(),
	})
	n.finalize(t, nil, true)
	if viaQuasi {
		if n.tr.Enabled() {
			n.tr.Emit(trace.Event{Kind: trace.KQuasiSend, Txn: t.id,
				Frag: q.Fragment, Pos: q.Pos})
		}
		n.bcast.Send(q)
	} else {
		n.bcast.Send(commitCmdMsg{Txn: t.id, Fragment: q.Fragment})
	}
	if n.cl.onQuasiApplied != nil {
		n.cl.onQuasiApplied(n.id, q)
	}
	n.notifyStreamWaiters(st)
	n.drainStream(q.Fragment, st)
}

// agentType maps an agent to the fragment it controls, for history
// typing of read-only transactions (best effort: the first fragment).
func (n *Node) agentType(a fragments.AgentID) fragments.FragmentID {
	fs := n.cl.tokens.FragmentsOf(a)
	if len(fs) == 0 {
		return ""
	}
	return fs[0]
}

// finalize completes a transaction exactly once: cancels its timeout,
// releases its locks everywhere, updates counters, and invokes the
// completion callback.
func (n *Node) finalize(t *activeTxn, err error, committed bool) {
	if t.finalizedFlag {
		return
	}
	t.finalizedFlag = true
	t.finished = true
	if t.poisoned == nil && err != nil {
		t.poisoned = err
	}
	n.cl.sched.Cancel(t.timeoutEv)
	if t.majorityEv != nil {
		n.cl.sched.Cancel(t.majorityEv)
	}
	delete(n.active, t.id)
	grants := n.locks.Release(t.id)
	// Release messages go out in node order: map order would let the
	// release race unfold differently run to run under the same seed.
	peers := make([]netsim.NodeID, 0, len(t.remoteLocked))
	for peer := range t.remoteLocked {
		peers = append(peers, peer)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for _, peer := range peers {
		n.cl.tr.Send(n.id, peer, lockReleaseMsg{Txn: t.id})
	}
	now := n.cl.sched.Now()
	if committed {
		n.cl.stats.Committed.Add(1)
		n.cl.stats.CommitLatency.Observe(now.Sub(t.start))
		n.cl.reg.IncCommit(t.spec.Fragment, n.origin(t.spec))
		n.cl.reg.ObserveCommitLatency(t.spec.Fragment, n.origin(t.spec), now.Sub(t.start))
		if n.cl.cfg.ApplyShards > 1 && n.txnSpansShards(t) {
			n.cl.stats.CrossShardTxns.Add(1)
		}
		if n.tr.Enabled() {
			n.tr.Emit(trace.Event{Kind: trace.KCommit, Txn: t.id,
				Frag: t.spec.Fragment, Dur: now.Sub(t.start), Note: t.spec.Label})
		}
	} else {
		n.cl.stats.Aborted.Add(1)
		n.cl.reg.IncAbort(t.spec.Fragment, n.origin(t.spec), abortCause(err))
		if n.tr.Enabled() {
			cause := ""
			if err != nil {
				cause = err.Error()
			}
			n.tr.Emit(trace.Event{Kind: trace.KAbort, Txn: t.id,
				Frag: t.spec.Fragment, Dur: now.Sub(t.start), Err: cause, Note: t.spec.Label})
		}
	}
	n.onGrants(grants)
	if t.done != nil {
		t.done(TxnResult{
			ID: t.id, Label: t.spec.Label, Committed: committed,
			Err: err, Start: t.start, End: now,
		})
	}
}

// abortCause classifies an abort error into the fixed label set of the
// frag_aborts_total metric family. The set is closed (every branch maps
// to one of these strings) so the registry's cause cardinality stays
// bounded no matter what error text the engine produces.
func abortCause(err error) string {
	switch {
	case err == nil:
		return "other"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrDeadlock):
		return "deadlock"
	case errors.Is(err, ErrWounded):
		return "wounded"
	case errors.Is(err, ErrNoMajority):
		return "no-majority"
	case errors.Is(err, ErrRemoteDenied):
		return "remote-deny"
	case errors.Is(err, ErrAgentMoving):
		return "agent-moving"
	case errors.Is(err, ErrUndeclaredRead):
		return "undeclared-read"
	case errors.Is(err, ErrNotAgent), errors.Is(err, ErrNotHome):
		return "rejected"
	default:
		return "other"
	}
}

// timeoutTxn aborts a transaction that has been blocked too long.
func (n *Node) timeoutTxn(t *activeTxn) {
	if t.finalizedFlag {
		return
	}
	n.cl.stats.TimedOut.Add(1)
	n.abortBlocked(t, ErrTimeout)
}

// abortBlocked aborts a transaction from outside its own request flow:
// a timeout, a wound by a quasi-transaction, or a failed majority. The
// transaction is necessarily not mid-request (the engine is between
// events), so it is parked on a lock, awaiting a remote grant, awaiting
// a majority, awaiting a scheduled response, or thinking.
func (n *Node) abortBlocked(t *activeTxn, cause error) {
	if t.finalizedFlag {
		return
	}
	t.finished = true
	t.poisoned = cause
	waitingMaj := t.waitingMajority
	waitingMulti := t.waitingMulti
	t.waitingMajority = false
	t.waitingMulti = false
	if waitingMulti {
		n.abortMulti(t)
	}
	n.finalize(t, cause, false)
	switch {
	case waitingMulti:
		// The program already completed; participants were told to abort.
	case waitingMaj:
		// The program already completed; cancel the prepared quasi.
		n.bcast.Send(abortCmdMsg{Txn: t.id, Fragment: t.spec.Fragment})
	case t.parked != nil:
		t.parked = nil
		t.respCh <- response{err: cause}
		n.serve(t)
	case t.pendingRemote != nil:
		t.pendingRemote = nil
		t.respCh <- response{err: cause}
		n.serve(t)
	default:
		// A response event is scheduled (finishRead/finishWrite/Think);
		// its closure observes t.finished and responds with the cause.
	}
}

// --- quasi-transaction application -----------------------------------

// quasiWaiter tracks a quasi-transaction acquiring its write locks.
type quasiWaiter struct {
	q         txn.Quasi
	f         fragments.FragmentID
	st        *streamState
	remaining map[fragments.ObjectID]bool
	// ordered is false for commutative fragments, whose installation
	// neither blocks nor advances the strict stream sequence.
	ordered bool

	// Sharded-apply run state (nil/zero on the serial path): the
	// contiguous run this waiter installs as a group under q.Txn's
	// locks, its shard, whether the shard slot is held through the
	// installation, and whether installation is already scheduled.
	run       []txn.Quasi
	shardIdx  int
	slotHeld  bool
	scheduled bool
}

// applyQuasi installs a quasi-transaction under exclusive locks,
// wounding local transactions if a deadlock would otherwise arise
// (remote updates have priority: they are already committed at the home
// node and cannot be aborted).
func (n *Node) applyQuasi(f fragments.FragmentID, st *streamState, q txn.Quasi) {
	st.applying = true
	n.acquireAndInstall(&quasiWaiter{q: q, f: f, st: st, ordered: true,
		remaining: make(map[fragments.ObjectID]bool)})
}

// applyQuasiUnordered installs a commutative fragment's
// quasi-transaction without stream sequencing.
func (n *Node) applyQuasiUnordered(f fragments.FragmentID, st *streamState, q txn.Quasi) {
	n.acquireAndInstall(&quasiWaiter{q: q, f: f, st: st, ordered: false,
		remaining: make(map[fragments.ObjectID]bool)})
}

// acquireAndInstall takes the quasi-transaction's write locks (wounding
// local holders on deadlock) and installs once all are held.
func (n *Node) acquireAndInstall(w *quasiWaiter) {
	q := w.q
	if n.quasiWaiters == nil {
		n.quasiWaiters = make(map[txn.ID]*quasiWaiter)
	}
	n.quasiWaiters[q.Txn] = w
	for _, o := range sortedWriteObjects(q.Writes) {
		granted, err := n.locks.Acquire(q.Txn, o, lock.Exclusive)
		if err != nil {
			// Deadlock: wound the local holders and retry.
			n.woundHolders(o, q.Txn)
			granted, err = n.locks.Acquire(q.Txn, o, lock.Exclusive)
			if err != nil {
				// Still cyclic through other objects; wound again is not
				// possible here — treat as queued; the cycle was broken
				// by the wounds above in all realizable schedules.
				granted = false
			}
		}
		if !granted {
			w.remaining[o] = true
		}
	}
	if len(w.remaining) == 0 {
		n.installQuasi(w)
	}
}

// woundHolders aborts every local transaction holding a lock on o (and
// force-releases remote readers), so a committed remote update can
// proceed.
func (n *Node) woundHolders(o fragments.ObjectID, requester txn.ID) {
	for _, h := range n.locks.Holders(o) {
		if h == requester {
			continue
		}
		if t, ok := n.active[h]; ok {
			n.cl.stats.Wounds.Add(1)
			if n.tr.Enabled() {
				n.tr.Emit(trace.Event{Kind: trace.KWound, Txn: h,
					Other: requester, Obj: o})
			}
			n.abortBlocked(t, ErrWounded)
			continue
		}
		if rh, ok := n.remoteHeld[h]; ok {
			n.cl.sched.Cancel(rh.leaseEv)
			delete(n.remoteHeld, h)
			n.onGrants(n.locks.Release(h))
		}
	}
}

// ensureCataloged registers a quasi-transaction's write objects in this
// process's catalog. In the simulator the shared catalog already knows
// them (the home node's write path registered each object before the
// quasi-transaction was broadcast, so this is a no-op); in a SingleNode
// multi-process deployment each process has its own catalog, which
// first learns of a remote agent's dynamically created objects here —
// before the install and any application trigger that reads them.
func (n *Node) ensureCataloged(f fragments.FragmentID, writes []txn.WriteOp) {
	for _, wo := range writes {
		// The only possible error is a cross-fragment conflict, which
		// would require two agents writing the same object — excluded by
		// the fragments-and-agents ownership model.
		_ = n.cl.cat.EnsureObject(f, wo.Object)
	}
}

// installQuasi applies the quasi-transaction's writes atomically and,
// for ordered fragments, advances the stream.
func (n *Node) installQuasi(w *quasiWaiter) {
	n.ensureCataloged(w.f, w.q.Writes)
	n.store.ApplyQuasi(w.q)
	if w.ordered {
		w.st.last = w.q.Pos
	} else if w.st.last.Less(w.q.Pos) {
		w.st.last = w.q.Pos
	}
	w.st.appliedLog = append(w.st.appliedLog, w.q)
	n.cl.stats.QuasiApplied.Add(1)
	lag := n.cl.sched.Now().Sub(w.q.Stamp)
	n.cl.stats.QuasiLag.Observe(lag)
	n.cl.reg.IncApply(w.f, w.q.Home)
	n.cl.reg.ObserveQuasiLag(w.f, w.q.Home, lag)
	if n.tr.Enabled() {
		n.tr.Emit(trace.Event{Kind: trace.KQuasiApply, Txn: w.q.Txn,
			Frag: w.f, Pos: w.q.Pos, Peer: w.q.Home, HasPeer: true, Dur: lag})
	}
	delete(n.quasiWaiters, w.q.Txn)
	grants := n.locks.Release(w.q.Txn)
	if w.ordered {
		w.st.applying = false
	}
	n.onGrants(grants)
	if n.cl.onQuasiApplied != nil {
		n.cl.onQuasiApplied(n.id, w.q)
	}
	n.notifyStreamWaiters(w.st)
	if w.ordered {
		n.drainStream(w.f, w.st)
	}
}

// onGrants dispatches lock grants produced by a Release call to their
// waiting owners: parked local transactions, waiting quasi-transactions,
// or queued remote lock requests.
func (n *Node) onGrants(grants []lock.Grant) {
	for _, g := range grants {
		if w, ok := n.quasiWaiters[g.Txn]; ok {
			delete(w.remaining, g.Object)
			if len(w.remaining) == 0 {
				if w.run != nil {
					n.scheduleInstall(n.apply, w)
				} else {
					n.installQuasi(w)
				}
			}
			continue
		}
		if p, ok := n.multiByPid[g.Txn]; ok {
			delete(p.remaining, g.Object)
			if len(p.remaining) == 0 {
				n.votePart(p)
			}
			continue
		}
		if t, ok := n.active[g.Txn]; ok && t.parked != nil && t.parked.obj == g.Object {
			req := *t.parked
			t.parked = nil
			if req.kind == reqRead {
				n.finishRead(t, req)
			} else {
				n.finishWrite(t, req)
			}
			continue
		}
		if rq, ok := n.remoteQueued[g.Txn]; ok && rq.obj == g.Object {
			delete(n.remoteQueued, g.Txn)
			n.grantRemote(g.Txn, rq.from, g.Object)
		}
	}
}
