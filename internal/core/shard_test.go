package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"fragdb/internal/fragments"
	"fragdb/internal/netsim"
	"fragdb/internal/simtime"
)

// shardedCluster builds a 4-node cluster with eight single-object-pair
// fragments G0..G7, agents spread round-robin across the nodes, and
// the sharded apply path enabled with the given shard count.
func shardedCluster(t *testing.T, shards int, seed int64) *Cluster {
	t.Helper()
	cl := NewCluster(Config{
		N: 4, Option: UnrestrictedReads, Seed: seed,
		ApplyShards: shards,
	})
	for i := 0; i < 8; i++ {
		f := fragments.FragmentID(fmt.Sprintf("G%d", i))
		oa := fragments.ObjectID(string(f) + "/a")
		ob := fragments.ObjectID(string(f) + "/b")
		if err := cl.Catalog().AddFragment(f, oa, ob); err != nil {
			t.Fatal(err)
		}
		home := netsim.NodeID(i % 4)
		cl.Tokens().Assign(f, fragments.NodeAgent(home), home)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for _, sfx := range []string{"/a", "/b"} {
			if err := cl.Load(fragments.ObjectID(fmt.Sprintf("G%d%s", i, sfx)), int64(0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cl
}

// submitShardLoad schedules rounds of disjoint-fragment increments
// (every agent updating its own fragment at the same instants, so the
// resulting quasi-transaction streams overlap at every replica).
func submitShardLoad(cl *Cluster, rounds int) {
	for round := 0; round < rounds; round++ {
		for i := 0; i < 8; i++ {
			f := fragments.FragmentID(fmt.Sprintf("G%d", i))
			oa := fragments.ObjectID(string(f) + "/a")
			home := netsim.NodeID(i % 4)
			at := simtime.Time(time.Duration(round*40) * time.Millisecond)
			cl.Sched().At(at, func() {
				cl.Node(home).Submit(TxnSpec{
					Agent: fragments.NodeAgent(home), Fragment: f,
					Program: func(tx *Tx) error {
						v, err := tx.ReadInt(oa)
						if err != nil {
							return err
						}
						return tx.Write(oa, v+1)
					},
				}, nil)
			})
		}
	}
}

// TestShardedApplyConverges drives disjoint-fragment load through the
// 8-shard apply path and checks the serial path's guarantees survive:
// convergence, mutual consistency, per-fragment order (the increments
// sum), and that appliers actually overlapped (ApplyParallelism > 1).
func TestShardedApplyConverges(t *testing.T) {
	cl := shardedCluster(t, 8, 7)
	defer cl.Shutdown()
	submitShardLoad(cl, 10)
	cl.RunFor(time.Second)
	if !cl.Settle(10 * time.Second) {
		t.Fatal("sharded cluster did not settle")
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	if got := cl.Stats().Committed.Load(); got != 80 {
		t.Errorf("committed = %d, want 80", got)
	}
	for i := 0; i < 8; i++ {
		o := fragments.ObjectID(fmt.Sprintf("G%d/a", i))
		for nid := 0; nid < 4; nid++ {
			if v, _ := cl.Node(netsim.NodeID(nid)).Store().Get(o); v != int64(10) {
				t.Errorf("node %d sees %s = %v, want 10", nid, o, v)
			}
		}
	}
	if max := cl.Stats().ApplyParallelism.Max(); max < 2 {
		t.Errorf("ApplyParallelism.Max() = %v, want >= 2 (appliers never overlapped)", max)
	}
}

// TestShardedApplyCrossShardReads commits transactions whose read sets
// span fragments on different shards and checks the CrossShardTxns
// counter sees them.
func TestShardedApplyCrossShardReads(t *testing.T) {
	cl := shardedCluster(t, 8, 11)
	defer cl.Shutdown()
	res := submitSync(cl, 0, TxnSpec{
		Agent: fragments.NodeAgent(0), Fragment: "G0", Label: "cross",
		Program: func(tx *Tx) error {
			// Read every other fragment: with 8 fragments over 8 shards at
			// least two distinct shards are touched whatever the hash.
			for i := 1; i < 8; i++ {
				if _, err := tx.Read(fragments.ObjectID(fmt.Sprintf("G%d/a", i))); err != nil {
					return err
				}
			}
			return tx.Write("G0/a", int64(1))
		},
	})
	if !cl.Settle(5 * time.Second) {
		t.Fatal("did not settle")
	}
	if !res.Committed {
		t.Fatalf("cross-shard txn failed: %+v", res)
	}
	if got := cl.Stats().CrossShardTxns.Load(); got < 1 {
		t.Errorf("CrossShardTxns = %d, want >= 1", got)
	}
}

// TestShardedApplyDeterministic runs the same seeded sharded scenario
// twice — including a partition and a crash/restart — and requires
// identical final stores, commit counts, and virtual clocks.
func TestShardedApplyDeterministic(t *testing.T) {
	run := func() (uint64, simtime.Time, map[fragments.ObjectID]any) {
		cl := shardedCluster(t, 8, 99)
		defer cl.Shutdown()
		submitShardLoad(cl, 6)
		cl.Net().ScheduleSplit(simtime.Time(70*time.Millisecond), []netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
		cl.Sched().At(simtime.Time(110*time.Millisecond), func() {
			cl.Net().SetNodeDown(3, true)
		})
		cl.Net().ScheduleHeal(simtime.Time(300 * time.Millisecond))
		cl.RunFor(500 * time.Millisecond)
		cl.RestartAll()
		cl.Settle(20 * time.Second)
		return cl.Stats().Committed.Load(), cl.Now(), cl.Node(0).Store().Snapshot()
	}
	c1, t1, s1 := run()
	c2, t2, s2 := run()
	if c1 != c2 || t1 != t2 {
		t.Errorf("nondeterministic: (%d,%v) vs (%d,%v)", c1, t1, c2, t2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("nondeterministic: final stores differ between identical seeded runs")
	}
}

// TestShardedApplyCrashRestart crashes a replica mid-stream and checks
// the rebuilt node (fresh lock shards, fresh apply scheduler) catches
// up to full consistency.
func TestShardedApplyCrashRestart(t *testing.T) {
	cl := shardedCluster(t, 4, 5)
	defer cl.Shutdown()
	submitShardLoad(cl, 8)
	cl.Sched().At(simtime.Time(90*time.Millisecond), func() {
		cl.Net().SetNodeDown(2, true)
	})
	cl.RunFor(400 * time.Millisecond)
	cl.RestartAll()
	if !cl.Settle(15 * time.Second) {
		t.Fatal("did not settle after crash/restart")
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	if got := cl.Stats().Committed.Load(); got != 64 {
		t.Errorf("committed = %d, want 64", got)
	}
}

// TestShardedBatchCoalesces enables sender-side batching on a sharded
// cluster and checks that a delivered DataBatch installs as one
// multi-quasi run (a KShardApply event with Arg >= 2) — one lock
// acquisition per fragment per batch, not per payload.
func TestShardedBatchCoalesces(t *testing.T) {
	cl := NewCluster(Config{
		N: 3, Option: UnrestrictedReads, Seed: 13,
		ApplyShards: 4, BatchFlushDelay: 20 * time.Millisecond,
		TraceCap: 4096,
	})
	if err := cl.Catalog().AddFragment("G0", "G0/a"); err != nil {
		t.Fatal(err)
	}
	cl.Tokens().Assign("G0", fragments.NodeAgent(0), 0)
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Load("G0/a", int64(0)); err != nil {
		t.Fatal(err)
	}
	// Staggered so the updates commit serially (no upgrade contention)
	// but all inside one 20ms flush window: their quasis ship as one
	// DataBatch.
	for i := 0; i < 6; i++ {
		cl.Sched().At(simtime.Time(time.Duration(i)*3*time.Millisecond), func() {
			cl.Node(0).Submit(TxnSpec{
				Agent: fragments.NodeAgent(0), Fragment: "G0",
				Program: func(tx *Tx) error {
					v, err := tx.ReadInt("G0/a")
					if err != nil {
						return err
					}
					return tx.Write("G0/a", v+1)
				},
			}, nil)
		})
	}
	cl.RunFor(100 * time.Millisecond)
	if !cl.Settle(10 * time.Second) {
		t.Fatal("did not settle")
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	coalesced := false
	for nid := netsim.NodeID(0); nid < 3; nid++ {
		for _, ev := range cl.Trace(nid).Tail(0) {
			if ev.Kind.String() == "shard-apply" && ev.Arg >= 2 {
				coalesced = true
			}
		}
	}
	if !coalesced {
		t.Error("no multi-quasi shard run observed: batches are not coalescing into single acquisitions")
	}
}

// TestShardedMatchesSerialOutcome runs the same workload on the serial
// and the sharded engine and requires identical final database state —
// the end-to-end equivalence the per-fragment order guarantee implies.
func TestShardedMatchesSerialOutcome(t *testing.T) {
	run := func(shards int) map[fragments.ObjectID]any {
		cl := shardedCluster(t, shards, 21)
		defer cl.Shutdown()
		submitShardLoad(cl, 5)
		cl.RunFor(300 * time.Millisecond)
		if !cl.Settle(10 * time.Second) {
			t.Fatalf("shards=%d did not settle", shards)
		}
		if err := cl.CheckMutualConsistency(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return cl.Node(1).Store().Snapshot()
	}
	serial := run(1)
	for _, k := range []int{2, 4, 8} {
		if got := run(k); !reflect.DeepEqual(got, serial) {
			t.Errorf("shards=%d final state differs from serial", k)
		}
	}
}
