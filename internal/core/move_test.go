package core

import (
	"testing"
	"time"

	"fragdb/internal/fragments"
	"fragdb/internal/netsim"
	"fragdb/internal/simtime"
)

// moveCluster: 3 nodes, one fragment F with objects x, y; agent
// "user:m" initially homed at node 0.
func moveCluster(t *testing.T) *Cluster {
	t.Helper()
	cl := NewCluster(Config{N: 3, Option: UnrestrictedReads, Seed: 9})
	if err := cl.Catalog().AddFragment("F", "x", "y"); err != nil {
		t.Fatal(err)
	}
	cl.Tokens().Assign("F", "user:m", 0)
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	cl.Load("x", int64(0))
	cl.Load("y", int64(0))
	return cl
}

func inc(obj fragments.ObjectID) func(tx *Tx) error {
	return func(tx *Tx) error {
		v, err := tx.ReadInt(obj)
		if err != nil {
			return err
		}
		return tx.Write(obj, v+1)
	}
}

func TestMoveWithDataContinuesStream(t *testing.T) {
	cl := moveCluster(t)
	defer cl.Shutdown()
	// Two updates at the original home.
	for i := 0; i < 2; i++ {
		submitSync(cl, 0, TxnSpec{Agent: "user:m", Fragment: "F", Program: inc("x")})
		cl.RunFor(50 * time.Millisecond)
	}
	// Move with data (Section 4.4.2A): block, snapshot, transport,
	// install, re-home.
	n0, n1 := cl.Node(0), cl.Node(1)
	n0.SetMoveBlocked("F", true)
	snap := n0.Store().FragmentSnapshot("F")
	pos := n0.StreamPos("F")
	if pos.Seq != 2 {
		t.Fatalf("pos = %v", pos)
	}
	cl.Sched().After(200*time.Millisecond, func() { // transport delay
		n1.InstallSnapshot("F", snap, pos)
		cl.Tokens().MoveAgent("user:m", 1)
		n0.SetMoveBlocked("F", false)
	})
	cl.RunFor(300 * time.Millisecond)
	// Update at the old home now fails; at the new home it succeeds and
	// continues the sequence.
	resOld := submitSync(cl, 0, TxnSpec{Agent: "user:m", Fragment: "F", Program: inc("x")})
	resNew := submitSync(cl, 1, TxnSpec{Agent: "user:m", Fragment: "F", Program: inc("x")})
	if !cl.Settle(20 * time.Second) {
		t.Fatal("did not settle")
	}
	if resOld.Committed {
		t.Error("old home accepted an update after the move")
	}
	if !resNew.Committed {
		t.Fatalf("new home rejected the update: %+v", resNew)
	}
	if got := cl.Node(1).StreamPos("F"); got.Seq != 3 || got.Epoch != 0 {
		t.Errorf("stream pos = %v, want e0#3 (uninterrupted sequence)", got)
	}
	if v, _ := cl.Node(2).Store().Get("x"); v != int64(3) {
		t.Errorf("x = %v, want 3", v)
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	if err := cl.Recorder().CheckFragmentwise(); err != nil {
		t.Errorf("fragmentwise: %v", err)
	}
}

func TestMoveWithDataDuringPartitionPreservesFragmentwise(t *testing.T) {
	cl := moveCluster(t)
	defer cl.Shutdown()
	// Updates at node 0 while node 1 is partitioned away: node 1's
	// replica is stale, but the carried snapshot makes it current.
	cl.Net().Partition([]netsim.NodeID{0, 2}, []netsim.NodeID{1})
	for i := 0; i < 3; i++ {
		submitSync(cl, 0, TxnSpec{Agent: "user:m", Fragment: "F", Program: inc("x")})
		cl.RunFor(50 * time.Millisecond)
	}
	n0, n1 := cl.Node(0), cl.Node(1)
	n0.SetMoveBlocked("F", true)
	snap := n0.Store().FragmentSnapshot("F")
	pos := n0.StreamPos("F")
	// The agent physically carries the tape across the partition.
	n1.InstallSnapshot("F", snap, pos)
	cl.Tokens().MoveAgent("user:m", 1)
	// New home reads its own (now current) fragment and updates it,
	// still partitioned from the old home.
	var seen int64
	res := submitSync(cl, 1, TxnSpec{
		Agent: "user:m", Fragment: "F",
		Program: func(tx *Tx) error {
			v, err := tx.ReadInt("x")
			if err != nil {
				return err
			}
			seen = v
			return tx.Write("x", v+1)
		},
	})
	cl.RunFor(time.Second)
	if !res.Committed || seen != 3 {
		t.Fatalf("res=%+v seen=%d (agent must see the data it carried)", res, seen)
	}
	cl.Net().Heal()
	if !cl.Settle(20 * time.Second) {
		t.Fatal("did not settle")
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	if err := cl.Recorder().CheckFragmentwise(); err != nil {
		t.Errorf("fragmentwise: %v", err)
	}
	if v, _ := cl.Node(2).Store().Get("x"); v != int64(4) {
		t.Errorf("x = %v, want 4", v)
	}
}

func TestWaitForStreamMoveWithSeq(t *testing.T) {
	cl := moveCluster(t)
	defer cl.Shutdown()
	// Partition node 1 away; old home commits 2 updates.
	cl.Net().Partition([]netsim.NodeID{0, 2}, []netsim.NodeID{1})
	for i := 0; i < 2; i++ {
		submitSync(cl, 0, TxnSpec{Agent: "user:m", Fragment: "F", Program: inc("x")})
		cl.RunFor(50 * time.Millisecond)
	}
	pos := cl.Node(0).StreamPos("F") // carried sequence number
	cl.Node(0).SetMoveBlocked("F", true)
	// At node 1 (still partitioned): wait for the stream to catch up
	// before taking over (Section 4.4.2B).
	var tookOver simtime.Time
	cl.Node(1).WaitForStream("F", pos, func() {
		cl.Tokens().MoveAgent("user:m", 1)
		tookOver = cl.Now()
	})
	cl.RunFor(500 * time.Millisecond)
	if tookOver != 0 {
		t.Fatal("takeover happened while partitioned (missing transactions!)")
	}
	cl.Net().Heal()
	if !cl.Settle(20 * time.Second) {
		t.Fatal("did not settle")
	}
	if tookOver == 0 {
		t.Fatal("takeover never happened after heal")
	}
	// New home continues the sequence.
	res := submitSync(cl, 1, TxnSpec{Agent: "user:m", Fragment: "F", Program: inc("x")})
	cl.Settle(20 * time.Second)
	if !res.Committed {
		t.Fatalf("res = %+v", res)
	}
	if v, _ := cl.Node(2).Store().Get("x"); v != int64(3) {
		t.Errorf("x = %v", v)
	}
	if err := cl.Recorder().CheckFragmentwise(); err != nil {
		t.Errorf("fragmentwise: %v", err)
	}
}

func TestNoPrepMoveRecoversMissingTransactions(t *testing.T) {
	cl := moveCluster(t)
	defer cl.Shutdown()
	var recovered []RecoveredUpdate
	cl.OnRecovered(func(ru RecoveredUpdate) { recovered = append(recovered, ru) })

	// Everyone sees the first update.
	submitSync(cl, 0, TxnSpec{Agent: "user:m", Fragment: "F", Program: inc("x")})
	if !cl.Settle(10 * time.Second) {
		t.Fatal("settle 1")
	}
	// Old home is isolated and commits an update nobody sees (the
	// missing transaction T_l of Figure 4.4.1).
	cl.Net().Partition([]netsim.NodeID{0}, []netsim.NodeID{1, 2})
	submitSync(cl, 0, TxnSpec{Agent: "user:m", Fragment: "F",
		Program: func(tx *Tx) error { return tx.Write("y", int64(99)) }})
	cl.RunFor(200 * time.Millisecond)

	// The agent moves to node 1 with no preparation: new epoch + M0.
	cl.Tokens().MoveAgent("user:m", 1)
	cl.Node(1).BeginNoPrepEpoch("F")
	// New home processes transactions immediately (that is the point).
	res := submitSync(cl, 1, TxnSpec{Agent: "user:m", Fragment: "F", Program: inc("x")})
	cl.RunFor(300 * time.Millisecond)
	if !res.Committed {
		t.Fatalf("new home blocked: %+v", res)
	}
	// Heal: the missing transaction reaches node 1 (directly or
	// forwarded) and is repackaged; everything converges.
	cl.Net().Heal()
	if !cl.Settle(30 * time.Second) {
		t.Fatal("did not settle after heal")
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered = %d missing transactions, want 1", len(recovered))
	}
	if len(recovered[0].Kept) != 1 || recovered[0].Kept[0].Object != "y" {
		t.Errorf("recovered kept = %+v", recovered[0].Kept)
	}
	if cl.Stats().MissingRecovered.Load() != 1 {
		t.Errorf("MissingRecovered = %d", cl.Stats().MissingRecovered.Load())
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Errorf("mutual consistency (the protocol's one guarantee): %v", err)
	}
	// y's write survived through the repackaged transaction.
	if v, _ := cl.Node(2).Store().Get("y"); v != int64(99) {
		t.Errorf("y = %v, want 99", v)
	}
	if v, _ := cl.Node(0).Store().Get("x"); v != int64(2) {
		t.Errorf("x = %v, want 2", v)
	}
}

func TestNoPrepMoveDropsOverwrittenWrites(t *testing.T) {
	cl := moveCluster(t)
	defer cl.Shutdown()
	var recovered []RecoveredUpdate
	cl.OnRecovered(func(ru RecoveredUpdate) { recovered = append(recovered, ru) })

	submitSync(cl, 0, TxnSpec{Agent: "user:m", Fragment: "F", Program: inc("x")})
	if !cl.Settle(10 * time.Second) {
		t.Fatal("settle 1")
	}
	cl.Net().Partition([]netsim.NodeID{0}, []netsim.NodeID{1, 2})
	// Missing transaction writes x=100 at the old home.
	submitSync(cl, 0, TxnSpec{Agent: "user:m", Fragment: "F",
		Program: func(tx *Tx) error { return tx.Write("x", int64(100)) }})
	cl.RunFor(200 * time.Millisecond)
	// Move without preparation; the new home then writes x itself, with
	// a LATER timestamp, before the missing transaction arrives.
	cl.Tokens().MoveAgent("user:m", 1)
	cl.Node(1).BeginNoPrepEpoch("F")
	submitSync(cl, 1, TxnSpec{Agent: "user:m", Fragment: "F",
		Program: func(tx *Tx) error { return tx.Write("x", int64(555)) }})
	cl.RunFor(300 * time.Millisecond)
	cl.Net().Heal()
	if !cl.Settle(30 * time.Second) {
		t.Fatal("did not settle")
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered = %d", len(recovered))
	}
	// The missing write of x was overwritten by the newer x=555: rule
	// A(2) drops it.
	if len(recovered[0].Dropped) != 1 || recovered[0].Dropped[0].Object != "x" {
		t.Errorf("dropped = %+v", recovered[0].Dropped)
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	// The lost update: x is 555 everywhere (the missing 100 was
	// superseded) — mutual consistency preserved, fragmentwise
	// serializability knowingly sacrificed.
	if v, _ := cl.Node(2).Store().Get("x"); v != int64(555) {
		t.Errorf("x = %v, want 555", v)
	}
	if err := cl.Recorder().CheckFragmentwise(); err == nil {
		t.Log("note: fragmentwise serializability happened to survive (acceptable)")
	}
}
