package core

import (
	"errors"
	"sort"

	"fragdb/internal/fragments"
	"fragdb/internal/netsim"
	"fragdb/internal/trace"
	"fragdb/internal/txn"
)

// ErrCrashed aborts transactions in flight when their node crashes.
var ErrCrashed = errors.New("core: node crashed")

// SimulateCrashRestart models a crash-and-restart of this node: all
// volatile state is lost and rebuilt from the durable state, namely the
// store's write-ahead log and the broadcast journal (a real system
// fsyncs both; the simulation keeps them across the "crash").
//
// Lost and rebuilt:
//
//   - active transactions — aborted with ErrCrashed (their completion
//     callbacks fire, as a client would observe a connection drop);
//   - the lock table, parked quasi-transactions, remote-lock state, and
//     prepared multi-fragment parts (their coordinators time out and
//     presume abort — the classic 2PC window; parts already told to
//     commit before the crash were WAL-durable and survive);
//   - per-fragment stream positions — recomputed from the WAL;
//   - out-of-order buffers — rebuilt by replaying the broadcast journal
//     through the normal delivery path, which is idempotent (positions
//     at or below the WAL's high-water mark deduplicate).
//
// Pair with Net().SetNodeDown(id, true/false) to model the outage
// window itself; messages sent to the node while down are lost and
// recovered by anti-entropy afterwards.
func (n *Node) SimulateCrashRestart() {
	if n.tr.Enabled() {
		n.tr.Emit(trace.Event{Kind: trace.KCrash, Arg: int64(len(n.active))})
	}
	// Abort whatever was running.
	for _, t := range n.activeSnapshot() {
		n.abortBlocked(t, ErrCrashed)
	}
	// Volatile state: gone.
	n.locks = n.newLockManager()
	if n.apply != nil {
		// Fresh scheduler incarnation: closures scheduled by the old one
		// check pointer identity and die.
		n.apply = newApplyState(n.cl, n.id)
	}
	n.quasiWaiters = make(map[txn.ID]*quasiWaiter)
	n.remoteHeld = make(map[txn.ID]*remoteHolder)
	n.remoteQueued = make(map[txn.ID]remoteQueue)
	n.multiCoords = make(map[txn.ID]*multiCoord)
	n.multiParts = make(map[partKey]*multiPart)
	n.multiByPid = make(map[txn.ID]*multiPart)
	n.posQueries = make(map[uint64]func(netsim.NodeID, txn.FragPos))
	oldStreams := n.streams
	n.streams = make(map[fragments.FragmentID]*streamState)

	// Rebuild stream high-water marks and applied logs from the WAL.
	for _, rec := range n.store.Log() {
		if rec.Fragment == "" {
			continue
		}
		st := n.stream(rec.Fragment)
		if n.cl.IsCommutative(rec.Fragment) {
			st.seen[rec.Txn] = true
			if st.last.Less(rec.Pos) {
				st.last = rec.Pos
			}
		} else if st.last.Less(rec.Pos) {
			st.last = rec.Pos
		}
		st.appliedLog = append(st.appliedLog, txn.Quasi{
			Txn: rec.Txn, Fragment: rec.Fragment, Pos: rec.Pos,
			Home: n.id, Writes: rec.Writes, Stamp: rec.Stamp,
		})
	}
	// Epoch-recovery roles survive only as far as the WAL implies; a
	// recovering new-home keeps its repackaging duty (its recovered set
	// is conservative: re-recovering a missing transaction twice is
	// prevented by the seen ids rebuilt above only for commutative
	// fragments, so preserve the old recovery markers where present).
	for f, old := range oldStreams {
		st := n.stream(f)
		st.recovering = old.recovering
		st.recovered = old.recovered
		st.forward = old.forward
		st.forwardTo = old.forwardTo
		st.oldEpoch = old.oldEpoch
		st.oldInstalled = old.oldInstalled
		// An epoch switch is durable — the M0 announcement that caused it
		// sits in the broadcast journal — but the WAL records it only once
		// a new-epoch transaction commits. A node that crashed between the
		// switch and the first new-epoch commit must come back in the new
		// epoch: falling back to the old-epoch high-water mark would make
		// a new home reuse old-epoch sequence numbers that every other
		// node has already moved past (and discards as stale).
		if st.last.Epoch < old.last.Epoch {
			st.last = txn.FragPos{Epoch: old.last.Epoch, Seq: 0}
		}
	}

	// Re-apply durably installed snapshots in their original order: the
	// broadcast messages they stood in for are below the compaction
	// horizon and cannot be replayed, and the stream positions and
	// in-flight buffers they carried are volatile. applySnap is
	// idempotent over the WAL-rebuilt state (dominance merges, seen-id
	// deduplication), so re-applying after the rebuild is safe.
	for _, e := range n.snapJournal {
		n.applySnap(e.snap, e.have, e.prev)
	}

	// Replay the retained broadcast journal through the normal delivery
	// path to rebuild buffers and majority-commit state; deliveries
	// already in the WAL deduplicate on position. Under compaction the
	// journal starts at the stream's horizon, above any installed
	// snapshot, so the sequence numbers resume from Base.
	for origin := 0; origin < n.cl.cfg.N; origin++ {
		o := netsim.NodeID(origin)
		base := n.bcast.Base(o)
		for i, payload := range n.bcast.Log(o) {
			n.handleBroadcast(o, base+uint64(i)+1, payload)
		}
	}
	if n.tr.Enabled() {
		n.tr.Emit(trace.Event{Kind: trace.KRestart})
	}
}

// activeSnapshot copies the active set in deterministic order (abort
// mutates the map).
func (n *Node) activeSnapshot() []*activeTxn {
	out := make([]*activeTxn, 0, len(n.active))
	for _, t := range n.active {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id.Less(out[j].id) })
	return out
}
