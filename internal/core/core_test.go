package core

import (
	"errors"
	"testing"
	"time"

	"fragdb/internal/fragments"
	"fragdb/internal/netsim"
	"fragdb/internal/simtime"
)

// bankCluster builds a 3-node cluster with one fragment per node:
// F0 (agent node 0), F1 (agent node 1), F2 (agent node 2), each with
// two objects "fN/a", "fN/b" initialized to int64(0).
func bankCluster(t *testing.T, opt ControlOption) *Cluster {
	t.Helper()
	return populateBank(t, NewCluster(Config{N: 3, Option: opt, Seed: 42}), opt)
}

// populateBank declares the three-fragment schema on a fresh 3-node
// cluster, starts it, and loads the initial data.
func populateBank(t *testing.T, cl *Cluster, opt ControlOption) *Cluster {
	t.Helper()
	for i := 0; i < 3; i++ {
		f := fragments.FragmentID([]string{"F0", "F1", "F2"}[i])
		oa := fragments.ObjectID(string(f) + "/a")
		ob := fragments.ObjectID(string(f) + "/b")
		if err := cl.Catalog().AddFragment(f, oa, ob); err != nil {
			t.Fatal(err)
		}
		cl.Tokens().Assign(f, fragments.NodeAgent(netsim.NodeID(i)), netsim.NodeID(i))
	}
	if opt == AcyclicReads {
		// Star: F0's transactions may read F1 and F2.
		cl.DeclareRead("F0", "F1")
		cl.DeclareRead("F0", "F2")
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		f := []string{"F0", "F1", "F2"}[i]
		for _, sfx := range []string{"/a", "/b"} {
			if err := cl.Load(fragments.ObjectID(f+sfx), int64(0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cl
}

// submitSync submits and collects the result via callback.
func submitSync(cl *Cluster, node netsim.NodeID, spec TxnSpec) *TxnResult {
	var res TxnResult
	got := false
	cl.Node(node).Submit(spec, func(r TxnResult) { res = r; got = true })
	_ = got
	return &res
}

func TestUpdateCommitsAndPropagates(t *testing.T) {
	cl := bankCluster(t, UnrestrictedReads)
	defer cl.Shutdown()
	res := submitSync(cl, 0, TxnSpec{
		Agent: "node:0", Fragment: "F0", Label: "inc",
		Program: func(tx *Tx) error {
			v, err := tx.ReadInt("F0/a")
			if err != nil {
				return err
			}
			return tx.Write("F0/a", v+100)
		},
	})
	if !cl.Settle(5 * time.Second) {
		t.Fatal("did not settle")
	}
	if !res.Committed || res.Err != nil {
		t.Fatalf("result = %+v", res)
	}
	for i := 0; i < 3; i++ {
		if v, _ := cl.Node(netsim.NodeID(i)).Store().Get("F0/a"); v != int64(100) {
			t.Errorf("node %d sees F0/a = %v", i, v)
		}
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	if cl.Stats().Committed.Load() != 1 {
		t.Errorf("stats: %v", cl.Stats())
	}
}

func TestNotAgentRejected(t *testing.T) {
	cl := bankCluster(t, UnrestrictedReads)
	defer cl.Shutdown()
	res := submitSync(cl, 0, TxnSpec{
		Agent: "node:1", Fragment: "F0",
		Program: func(tx *Tx) error { return tx.Write("F0/a", int64(1)) },
	})
	cl.Settle(time.Second)
	if !errors.Is(res.Err, ErrNotAgent) {
		t.Errorf("err = %v, want ErrNotAgent", res.Err)
	}
	if cl.Stats().Rejected.Load() != 1 {
		t.Errorf("Rejected = %d", cl.Stats().Rejected.Load())
	}
}

func TestWrongHomeRejected(t *testing.T) {
	cl := bankCluster(t, UnrestrictedReads)
	defer cl.Shutdown()
	// F1's agent lives at node 1; submitting at node 0 must fail.
	res := submitSync(cl, 0, TxnSpec{
		Agent: "node:1", Fragment: "F1",
		Program: func(tx *Tx) error { return tx.Write("F1/a", int64(1)) },
	})
	cl.Settle(time.Second)
	if !errors.Is(res.Err, ErrNotHome) {
		t.Errorf("err = %v, want ErrNotHome", res.Err)
	}
}

func TestInitiationRequirementEnforced(t *testing.T) {
	cl := bankCluster(t, UnrestrictedReads)
	defer cl.Shutdown()
	// F0's agent tries to write F1's object: the write itself errors.
	var writeErr error
	res := submitSync(cl, 0, TxnSpec{
		Agent: "node:0", Fragment: "F0",
		Program: func(tx *Tx) error {
			writeErr = tx.Write("F1/a", int64(7))
			return writeErr
		},
	})
	cl.Settle(time.Second)
	if writeErr == nil {
		t.Fatal("cross-fragment write succeeded")
	}
	if res.Committed {
		t.Fatal("transaction with initiation violation committed")
	}
	// The foreign object must be untouched everywhere.
	if v, _ := cl.Node(1).Store().Get("F1/a"); v != int64(0) {
		t.Errorf("F1/a = %v", v)
	}
}

func TestReadOnlyAnywhere(t *testing.T) {
	cl := bankCluster(t, UnrestrictedReads)
	defer cl.Shutdown()
	// Any agent may run a read-only transaction at any node.
	var got int64
	res := submitSync(cl, 2, TxnSpec{
		Agent: "user:alice", Label: "ro",
		Program: func(tx *Tx) error {
			v, err := tx.ReadInt("F0/a")
			got = v
			return err
		},
	})
	cl.Settle(time.Second)
	if !res.Committed || got != 0 {
		t.Fatalf("res=%+v got=%d", res, got)
	}
}

func TestWriteInReadOnlyFails(t *testing.T) {
	cl := bankCluster(t, UnrestrictedReads)
	defer cl.Shutdown()
	var werr error
	submitSync(cl, 0, TxnSpec{
		Agent: "user:x",
		Program: func(tx *Tx) error {
			werr = tx.Write("F0/a", int64(1))
			return werr
		},
	})
	cl.Settle(time.Second)
	if !errors.Is(werr, ErrReadOnlyTxn) {
		t.Errorf("err = %v", werr)
	}
}

func TestPartitionedUpdatesStillCommitAndConvergeAfterHeal(t *testing.T) {
	cl := bankCluster(t, UnrestrictedReads)
	defer cl.Shutdown()
	cl.Net().Partition([]netsim.NodeID{0}, []netsim.NodeID{1, 2})
	// Each side updates its own fragment during the partition: full
	// availability for agents at their home nodes.
	r0 := submitSync(cl, 0, TxnSpec{
		Agent: "node:0", Fragment: "F0",
		Program: func(tx *Tx) error { return tx.Write("F0/a", int64(1)) },
	})
	r1 := submitSync(cl, 1, TxnSpec{
		Agent: "node:1", Fragment: "F1",
		Program: func(tx *Tx) error { return tx.Write("F1/a", int64(2)) },
	})
	cl.RunFor(time.Second)
	if !r0.Committed || !r1.Committed {
		t.Fatalf("partitioned commits failed: %+v %+v", r0, r1)
	}
	// Node 2 must not yet see F0's update.
	if v, _ := cl.Node(2).Store().Get("F0/a"); v == int64(1) {
		t.Error("update crossed the partition")
	}
	cl.Net().Heal()
	if !cl.Settle(10 * time.Second) {
		t.Fatal("did not settle after heal")
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	if v, _ := cl.Node(2).Store().Get("F0/a"); v != int64(1) {
		t.Error("update never arrived after heal")
	}
}

func TestFragmentwiseSerializabilityUnderLoad(t *testing.T) {
	cl := bankCluster(t, UnrestrictedReads)
	defer cl.Shutdown()
	// Every agent repeatedly increments its own objects while reading
	// the others' fragments; run across a partition and heal.
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			node := netsim.NodeID(i)
			f := fragments.FragmentID([]string{"F0", "F1", "F2"}[i])
			oa := fragments.ObjectID(string(f) + "/a")
			other := fragments.ObjectID([]string{"F1/a", "F2/a", "F0/a"}[i])
			at := simtime.Time(time.Duration(round*50+i*7) * time.Millisecond)
			cl.Sched().At(at, func() {
				cl.Node(node).Submit(TxnSpec{
					Agent: fragments.AgentID("node:" + string(rune('0'+node))), Fragment: f,
					Program: func(tx *Tx) error {
						if _, err := tx.Read(other); err != nil {
							return err
						}
						v, err := tx.ReadInt(oa)
						if err != nil {
							return err
						}
						return tx.Write(oa, v+1)
					},
				}, nil)
			})
		}
	}
	cl.Net().ScheduleSplit(simtime.Time(120*time.Millisecond), []netsim.NodeID{0, 1}, []netsim.NodeID{2})
	cl.Net().ScheduleHeal(simtime.Time(400 * time.Millisecond))
	cl.RunFor(time.Second)
	if !cl.Settle(20 * time.Second) {
		t.Fatal("did not settle")
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	if err := cl.Recorder().CheckFragmentwise(); err != nil {
		t.Errorf("fragmentwise serializability violated: %v", err)
	}
	// All 30 updates committed: full availability despite the partition.
	if got := cl.Stats().Committed.Load(); got != 30 {
		t.Errorf("committed = %d, want 30", got)
	}
	for i := 0; i < 3; i++ {
		f := []string{"F0", "F1", "F2"}[i]
		if v, _ := cl.Node(0).Store().Get(fragments.ObjectID(f + "/a")); v != int64(10) {
			t.Errorf("%s/a = %v, want 10", f, v)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, simtime.Time) {
		cl := bankCluster(t, UnrestrictedReads)
		defer cl.Shutdown()
		for i := 0; i < 20; i++ {
			node := netsim.NodeID(i % 3)
			f := fragments.FragmentID([]string{"F0", "F1", "F2"}[i%3])
			oa := fragments.ObjectID(string(f) + "/a")
			cl.Sched().At(simtime.Time(time.Duration(i)*13*time.Millisecond), func() {
				cl.Node(node).Submit(TxnSpec{
					Agent: fragments.NodeAgent(node), Fragment: f,
					Program: func(tx *Tx) error {
						v, err := tx.ReadInt(oa)
						if err != nil {
							return err
						}
						return tx.Write(oa, v+1)
					},
				}, nil)
			})
		}
		cl.Net().ScheduleSplit(simtime.Time(100*time.Millisecond), []netsim.NodeID{0}, []netsim.NodeID{1, 2})
		cl.Net().ScheduleHeal(simtime.Time(250 * time.Millisecond))
		cl.Settle(5 * time.Second)
		return cl.Stats().Committed.Load(), cl.Now()
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Errorf("nondeterministic: (%d,%v) vs (%d,%v)", c1, t1, c2, t2)
	}
}

func TestTimeoutAbortsBlockedTxn(t *testing.T) {
	cl := bankCluster(t, UnrestrictedReads)
	defer cl.Shutdown()
	// Txn A holds a write lock on F0/a for a long think; txn B (same
	// fragment, sequential submission) blocks on the lock and times out.
	cl.Node(0).Submit(TxnSpec{
		Agent: "node:0", Fragment: "F0", Label: "holder",
		Program: func(tx *Tx) error {
			if err := tx.Write("F0/a", int64(1)); err != nil {
				return err
			}
			tx.Think(20 * time.Second)
			return nil
		},
		Timeout: time.Hour,
	}, nil)
	var bres TxnResult
	cl.Sched().At(simtime.Time(10*time.Millisecond), func() {
		cl.Node(0).Submit(TxnSpec{
			Agent: "node:0", Fragment: "F0", Label: "blocked",
			Program: func(tx *Tx) error {
				return tx.Write("F0/a", int64(2))
			},
			Timeout: 500 * time.Millisecond,
		}, func(r TxnResult) { bres = r })
	})
	cl.RunFor(30 * time.Second)
	if !errors.Is(bres.Err, ErrTimeout) || bres.Committed {
		t.Errorf("blocked txn result = %+v", bres)
	}
	if cl.Stats().TimedOut.Load() != 1 {
		t.Errorf("TimedOut = %d", cl.Stats().TimedOut.Load())
	}
	cl.Settle(30 * time.Second)
	// The holder eventually commits.
	if v, _ := cl.Node(0).Store().Get("F0/a"); v != int64(1) {
		t.Errorf("F0/a = %v, want holder's 1", v)
	}
}

func TestLocalDeadlockVictim(t *testing.T) {
	cl := bankCluster(t, UnrestrictedReads)
	defer cl.Shutdown()
	// Two same-fragment transactions acquire a and b in opposite order
	// with thinks in between to force the deadlock.
	var errA, errB error
	cl.Node(0).Submit(TxnSpec{
		Agent: "node:0", Fragment: "F0", Label: "ab",
		Program: func(tx *Tx) error {
			if err := tx.Write("F0/a", int64(1)); err != nil {
				return err
			}
			tx.Think(50 * time.Millisecond)
			errA = tx.Write("F0/b", int64(1))
			return errA
		},
	}, nil)
	cl.Sched().At(simtime.Time(5*time.Millisecond), func() {
		cl.Node(0).Submit(TxnSpec{
			Agent: "node:0", Fragment: "F0", Label: "ba",
			Program: func(tx *Tx) error {
				if err := tx.Write("F0/b", int64(2)); err != nil {
					return err
				}
				tx.Think(50 * time.Millisecond)
				errB = tx.Write("F0/a", int64(2))
				return errB
			},
		}, nil)
	})
	cl.Settle(30 * time.Second)
	// Exactly one of the two must be a deadlock victim.
	aDead := errors.Is(errA, ErrDeadlock)
	bDead := errors.Is(errB, ErrDeadlock)
	if aDead == bDead {
		t.Errorf("deadlock outcome wrong: errA=%v errB=%v", errA, errB)
	}
	if cl.Stats().Deadlocks.Load() == 0 {
		t.Error("Deadlocks counter zero")
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
}

func TestUnknownObjectRead(t *testing.T) {
	cl := bankCluster(t, UnrestrictedReads)
	defer cl.Shutdown()
	var rerr error
	submitSync(cl, 0, TxnSpec{
		Agent: "user:x",
		Program: func(tx *Tx) error {
			_, rerr = tx.Read("no-such-object")
			return rerr
		},
	})
	cl.Settle(time.Second)
	if !errors.Is(rerr, ErrUnknownObject) {
		t.Errorf("err = %v", rerr)
	}
}

func TestDynamicObjectCreation(t *testing.T) {
	cl := bankCluster(t, UnrestrictedReads)
	defer cl.Shutdown()
	res := submitSync(cl, 0, TxnSpec{
		Agent: "node:0", Fragment: "F0",
		Program: func(tx *Tx) error {
			return tx.Write("F0/new-object", int64(5))
		},
	})
	if !cl.Settle(5 * time.Second) {
		t.Fatal("did not settle")
	}
	if !res.Committed {
		t.Fatalf("res = %+v", res)
	}
	// The new object exists in F0 at every replica.
	if f, ok := cl.Catalog().FragmentOf("F0/new-object"); !ok || f != "F0" {
		t.Errorf("FragmentOf = %v, %v", f, ok)
	}
	if v, _ := cl.Node(2).Store().Get("F0/new-object"); v != int64(5) {
		t.Errorf("replica value = %v", v)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	cl := bankCluster(t, UnrestrictedReads)
	defer cl.Shutdown()
	var seen int64
	submitSync(cl, 0, TxnSpec{
		Agent: "node:0", Fragment: "F0",
		Program: func(tx *Tx) error {
			if err := tx.Write("F0/a", int64(41)); err != nil {
				return err
			}
			v, err := tx.ReadInt("F0/a")
			if err != nil {
				return err
			}
			seen = v
			return tx.Write("F0/a", v+1)
		},
	})
	cl.Settle(5 * time.Second)
	if seen != 41 {
		t.Errorf("own write not visible: %d", seen)
	}
	if v, _ := cl.Node(1).Store().Get("F0/a"); v != int64(42) {
		t.Errorf("final = %v", v)
	}
}
