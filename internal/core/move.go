package core

import (
	"sort"

	"fragdb/internal/fragments"
	"fragdb/internal/history"
	"fragdb/internal/storage"
	"fragdb/internal/trace"
	"fragdb/internal/txn"
)

// This file implements the engine-side mechanics of agent movement
// (Section 4.4): stream-position carrying, fragment-snapshot
// installation, and the no-preparation protocol's M0 message with
// missing-transaction recovery (Section 4.4.3). The protocols
// themselves — who calls what and when — live in package agentmove.

// SetMoveBlocked marks a fragment as mid-move at this node: new update
// transactions are rejected with ErrAgentMoving until unblocked. The
// old home node sets this before handing off.
func (n *Node) SetMoveBlocked(f fragments.FragmentID, blocked bool) {
	n.stream(f).moveBlocked = blocked
}

// FenceMoving aborts every in-flight update transaction of fragment f
// at this node with ErrAgentMoving. The departing home node calls it
// at the start of a prepared move (after SetMoveBlocked), because a
// transaction that has not committed by then must never commit here:
// its sequence number would collide with the stream the new home takes
// over — the with-data snapshot and the carried sequence number capture
// the stream position at move start, and the majority reconstruction
// bounds only transactions already committed. For a transaction still
// awaiting majority acknowledgments, the abort also broadcasts the
// command discarding its prepared quasi-transaction at remote nodes.
func (n *Node) FenceMoving(f fragments.FragmentID) {
	for _, t := range n.activeSnapshot() {
		if t.spec.Fragment == f && !t.finalizedFlag {
			if n.tr.Enabled() {
				n.tr.Emit(trace.Event{Kind: trace.KMoveFence, Txn: t.id, Frag: f})
			}
			n.abortBlocked(t, ErrAgentMoving)
		}
	}
}

// InstallSnapshot installs a fragment snapshot transported out-of-band
// with the agent (move-with-data, Section 4.4.2A: the agent carries "a
// copy of the fragment stored at X ... in place of the copy of the
// fragment at site Y") and fast-forwards the local stream position so
// that the new home continues the single uninterrupted sequence.
func (n *Node) InstallSnapshot(f fragments.FragmentID, snap map[fragments.ObjectID]storage.Version, pos txn.FragPos) {
	st := n.stream(f)
	if n.tr.Enabled() {
		n.tr.Emit(trace.Event{Kind: trace.KMoveInstall, Frag: f, Pos: pos})
	}
	n.store.InstallFragmentSnapshot(f, snap)
	if st.last.Less(pos) {
		st.last = pos
	}
	// Anything buffered at or below the snapshot position is stale now.
	for p := range st.pending {
		if !st.last.Less(p) {
			delete(st.pending, p)
		}
	}
	n.notifyStreamWaiters(st)
	n.drainStream(f, st)
}

// BeginNoPrepEpoch starts a new epoch for fragment f at this node (the
// new home after an unprepared move) and broadcasts the M0 message of
// Section 4.4.3 carrying the old-epoch prefix installed here. The node
// enters recovery mode: old-epoch stragglers that arrive later — by
// broadcast or forwarded by other nodes under rule B(2) — are
// repackaged into new-epoch transactions (rule A(2)).
func (n *Node) BeginNoPrepEpoch(f fragments.FragmentID) {
	st := n.stream(f)
	oldLast := st.last
	newEpoch := oldLast.Epoch + 1
	installed := make([]txn.Quasi, len(st.appliedLog))
	copy(installed, st.appliedLog)
	st.recovering = true
	st.oldEpoch = oldLast.Epoch
	st.oldInstalled = oldLast.Seq
	st.last = txn.FragPos{Epoch: newEpoch, Seq: 0}
	st.appliedLog = nil
	if n.tr.Enabled() {
		n.tr.Emit(trace.Event{Kind: trace.KMoveEpoch, Frag: f, Seq: newEpoch, Pos: oldLast})
	}
	n.bcast.Send(m0Msg{
		Fragment: f, NewEpoch: newEpoch, OldLast: oldLast,
		Installed: installed, NewHome: n.id,
	})
	n.notifyStreamWaiters(st)
	n.drainStream(f, st)
}

// handleM0 processes an M0 announcement at every other node: install
// any old-epoch transactions the node is missing from the carried
// prefix (rule B(1)), then switch epochs and start forwarding
// stragglers to the new home (rule B(2)).
func (n *Node) handleM0(m m0Msg) {
	if m.NewHome == n.id {
		return // our own announcement
	}
	st := n.stream(m.Fragment)
	if m.NewEpoch <= st.last.Epoch {
		return // stale announcement
	}
	// Rule B(1): fill gaps from the carried prefix.
	inst := make([]txn.Quasi, len(m.Installed))
	copy(inst, m.Installed)
	sort.Slice(inst, func(i, j int) bool { return inst[i].Pos.Less(inst[j].Pos) })
	for _, q := range inst {
		if q.Pos.Epoch == st.last.Epoch && q.Pos.Seq > st.last.Seq {
			st.pending[q.Pos] = q
		}
	}
	n.drainStream(m.Fragment, st)
	// Switch epochs once no installation is parked on locks.
	n.performSwitch(m.Fragment, st, m)
}

// performSwitch moves the stream to the new epoch. If a
// quasi-transaction is still parked on locks, the switch retries after
// it installs (installQuasi calls drainStream, which re-runs waiters).
func (n *Node) performSwitch(f fragments.FragmentID, st *streamState, m m0Msg) {
	if st.applying {
		// Rare: wait for the in-flight installation, then switch.
		st.waiters = append(st.waiters, func() { n.performSwitch(f, st, m) })
		return
	}
	if m.NewEpoch <= st.last.Epoch {
		return // already switched
	}
	st.forward = true
	st.forwardTo = m.NewHome
	st.oldEpoch = st.last.Epoch
	st.oldInstalled = st.last.Seq
	st.last = txn.FragPos{Epoch: m.NewEpoch, Seq: 0}
	st.appliedLog = nil
	if n.tr.Enabled() {
		n.tr.Emit(trace.Event{Kind: trace.KEpochSwitch, Frag: f,
			Seq: m.NewEpoch, Peer: m.NewHome, HasPeer: true})
	}
	// Old-epoch quasi-transactions buffered but never applied (gaps the
	// prefix did not cover) become stragglers: forward them (rule B(2)).
	var stale []txn.FragPos
	for p := range st.pending {
		if p.Epoch < m.NewEpoch {
			stale = append(stale, p)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].Less(stale[j]) })
	for _, p := range stale {
		q := st.pending[p]
		delete(st.pending, p)
		if p.Epoch == st.oldEpoch && p.Seq > st.oldInstalled {
			n.cl.stats.QuasiForwarded.Add(1)
			if n.tr.Enabled() {
				n.tr.Emit(trace.Event{Kind: trace.KQuasiForward, Txn: q.Txn,
					Frag: f, Pos: p, Peer: m.NewHome, HasPeer: true})
			}
			n.cl.tr.Send(n.id, m.NewHome, forwardMsg{Q: q})
		}
	}
	n.notifyStreamWaiters(st)
	n.drainStream(f, st)
}

// handleForwarded processes a straggler forwarded by another node under
// rule B(2).
func (n *Node) handleForwarded(m forwardMsg) {
	st := n.stream(m.Q.Fragment)
	if st.recovering {
		n.recoverMissing(m.Q.Fragment, st, m.Q)
	}
}

// recoverMissing implements rule A(2) at the new home node: a missing
// old-epoch transaction is stripped of updates already overwritten by
// more recent transactions (by timestamp), repackaged under the next
// new-epoch sequence number, installed locally, and re-broadcast as a
// regular quasi-transaction. The cluster's OnRecovered hook then gets a
// chance to issue corrective actions ("if after T_k' runs, a flight is
// overbooked, then cancel one or more reservations").
func (n *Node) recoverMissing(f fragments.FragmentID, st *streamState, q txn.Quasi) {
	if q.Pos.Epoch != st.oldEpoch || q.Pos.Seq <= st.oldInstalled {
		return // duplicate of something installed before the move
	}
	if st.recovered[q.Txn] {
		return // already repackaged (arrived by both broadcast and forward)
	}
	st.recovered[q.Txn] = true
	var kept, dropped []txn.WriteOp
	for _, w := range q.Writes {
		ver, known := n.store.GetVersion(w.Object)
		if known && ver.Stamp >= q.Stamp {
			dropped = append(dropped, w)
		} else {
			kept = append(kept, w)
		}
	}
	n.cl.stats.MissingRecovered.Add(1)
	ru := RecoveredUpdate{Fragment: f, Original: q, Kept: kept, Dropped: dropped}
	if len(kept) > 0 {
		n.nextTxnSeq++
		newID := txn.ID{Origin: n.id, Seq: n.nextTxnSeq}
		ru.NewID = newID
		if n.tr.Enabled() {
			n.tr.Emit(trace.Event{Kind: trace.KRecover, Txn: q.Txn,
				Other: newID, Frag: f, Pos: q.Pos, Arg: int64(len(kept))})
		}
		pos := st.last.Next()
		now := n.cl.sched.Now()
		nq := txn.Quasi{Txn: newID, Fragment: f, Pos: pos, Home: n.id, Writes: kept, Stamp: now}
		st.last = pos
		st.appliedLog = append(st.appliedLog, nq)
		n.store.Apply(newID, f, pos, kept, now)
		n.cl.rec.Record(history.TxnRecord{
			ID: newID, Type: f, UpdateFragment: f, Pos: pos,
			Writes: sortedWriteObjects(kept), Node: n.id, Commit: now,
		})
		n.bcast.Send(nq)
		if n.cl.onQuasiApplied != nil {
			n.cl.onQuasiApplied(n.id, nq)
		}
		n.notifyStreamWaiters(st)
	}
	if n.cl.onRecovered != nil {
		n.cl.onRecovered(ru)
	}
}
