package core

import (
	"fmt"
	"sort"

	"fragdb/internal/broadcast"
	"fragdb/internal/fragments"
	"fragdb/internal/lock"
	"fragdb/internal/netsim"
	"fragdb/internal/simtime"
	"fragdb/internal/storage"
	"fragdb/internal/trace"
	"fragdb/internal/txn"
	"fragdb/internal/wire"
)

// Wire message types (beyond the broadcast layer's own).
type (
	// m0Msg is the special message of Section 4.4.3 announcing an
	// unprepared agent move: the new home node's identity, the new
	// epoch, and the old-epoch prefix it had installed at move time.
	m0Msg struct {
		Fragment fragments.FragmentID
		NewEpoch uint64
		// OldLast is the last old-epoch position installed at the new
		// home before the move (the paper's T_i).
		OldLast txn.FragPos
		// Installed carries the old-epoch quasi-transactions themselves
		// so receivers can fill gaps (rule B(1)).
		Installed []txn.Quasi
		// NewHome is where stragglers must be forwarded (rule B(2)).
		NewHome netsim.NodeID
	}

	// forwardMsg carries a missing old-epoch quasi-transaction to the
	// moved agent's new home (rule B(2)).
	forwardMsg struct {
		Q txn.Quasi
	}

	// lockReqMsg asks the receiving node (an agent's home) for a shared
	// lock on an object it controls, under the Section 4.1 option.
	lockReqMsg struct {
		Txn    txn.ID
		Object fragments.ObjectID
		From   netsim.NodeID
	}

	// lockGrantMsg grants a remote read lock, carrying the
	// authoritative current value and version.
	lockGrantMsg struct {
		Txn     txn.ID
		Object  fragments.ObjectID
		Value   any
		Known   bool // object had a value
		Version storage.Version
		// From is the serving node, to which the release must be sent.
		From netsim.NodeID
	}

	// lockDenyMsg refuses a remote read lock (deadlock victim).
	lockDenyMsg struct {
		Txn    txn.ID
		Object fragments.ObjectID
	}

	// lockReleaseMsg releases every lock the transaction holds at the
	// receiving node.
	lockReleaseMsg struct {
		Txn txn.ID
	}

	// prepareMsg is phase one of the Section 4.4.1 majority commit: the
	// quasi-transaction is buffered, not applied, and acknowledged.
	prepareMsg struct {
		Q txn.Quasi
	}

	// ackMsg acknowledges a prepareMsg back to the home node.
	ackMsg struct {
		Txn  txn.ID
		From netsim.NodeID
	}

	// commitCmdMsg is phase two: apply the buffered quasi-transaction.
	commitCmdMsg struct {
		Txn      txn.ID
		Fragment fragments.FragmentID
	}

	// abortCmdMsg cancels a prepared quasi-transaction that failed to
	// assemble a majority.
	abortCmdMsg struct {
		Txn      txn.ID
		Fragment fragments.FragmentID
	}

	// posQueryMsg asks a node for its current stream position of a
	// fragment (used by the majority move protocol of Section 4.4.1).
	posQueryMsg struct {
		ID       uint64
		Fragment fragments.FragmentID
		From     netsim.NodeID
	}

	// posReplyMsg answers a posQueryMsg.
	posReplyMsg struct {
		ID       uint64
		Fragment fragments.FragmentID
		Pos      txn.FragPos
		From     netsim.NodeID
	}

	// agentMovedMsg announces a bare token handoff of a fully
	// commutative agent over the reliable broadcast: every receiver
	// repoints the agent's tokens at the new home. Commutative
	// fragments make this safe without stream preparation (Section
	// 4.4.2A): their updates carry node-composed positions and install
	// unordered with duplicate suppression, so no prefix agreement is
	// needed. It is the movement protocol of SingleNode deployments,
	// where the full agentmove protocols cannot run (they drive both
	// endpoints' engines in-process).
	agentMovedMsg struct {
		Agent   fragments.AgentID
		NewHome netsim.NodeID
	}
)

// streamState tracks one fragment's update stream at one node.
type streamState struct {
	// last is the position of the last update installed locally.
	last txn.FragPos
	// pending buffers out-of-order or future-epoch quasi-transactions.
	pending map[txn.FragPos]txn.Quasi
	// applying is true while a quasi-transaction is parked on locks; the
	// stream must not advance past it.
	applying bool
	// appliedLog keeps the quasi-transactions installed in this epoch,
	// for M0 construction (only maintained for fragments whose agents
	// may move without preparation; bounded by workload size).
	appliedLog []txn.Quasi

	// forward mode (rule B(2)): old-epoch stragglers with positions
	// beyond oldInstalled are forwarded to forwardTo instead of applied.
	forward      bool
	forwardTo    netsim.NodeID
	oldEpoch     uint64
	oldInstalled uint64

	// recovering marks the new home node after an unprepared move: it
	// repackages old-epoch stragglers (rule A(2)).
	recovering bool
	// recovered remembers original transaction ids already repackaged.
	recovered map[txn.ID]bool

	// seen tracks applied quasi-transactions of commutative fragments
	// (which are deduplicated by identity rather than by position).
	seen map[txn.ID]bool

	// prepared buffers majority-commit quasi-transactions awaiting the
	// commit command, keyed by originating transaction.
	prepared map[txn.ID]txn.Quasi

	// moveBlocked refuses new update transactions while the agent is
	// mid-move (set by agentmove protocols).
	moveBlocked bool

	// waiters are callbacks run whenever the stream advances (used by
	// move-with-sequence-number to wait for a prefix).
	waiters []func()
}

// Node is one site's database engine.
type Node struct {
	id    netsim.NodeID
	cl    *Cluster
	store *storage.Store
	locks *lock.Manager
	bcast *broadcast.Broadcaster
	// tr is the node's flight recorder; nil when tracing is disabled
	// (every emission site checks before constructing an event).
	tr *trace.Recorder

	nextTxnSeq uint64
	active     map[txn.ID]*activeTxn
	streams    map[fragments.FragmentID]*streamState

	// quasiWaiters tracks quasi-transactions blocked on write locks.
	quasiWaiters map[txn.ID]*quasiWaiter

	// apply is the sharded-apply scheduler; nil when Config.ApplyShards
	// <= 1 (serial drain). Crash recovery replaces it wholesale.
	apply *applyState
	// batchFrags, while a broadcast delivery burst (a DataBatch, a
	// repair suffix) is being drained, collects fragments whose streams
	// became drainable; the burst's end dispatches each once, so a
	// batch costs one lock acquisition per fragment touched. Nil
	// outside bursts and on the serial path.
	batchFrags map[fragments.FragmentID]*streamState

	// remoteHeld tracks remote transactions holding locks here (option
	// 4.1 server side), with their lease-expiry events.
	remoteHeld map[txn.ID]*remoteHolder
	// remoteQueued maps a remotely-requesting transaction to the
	// requester node, for replying when its queued lock is granted.
	remoteQueued map[txn.ID]remoteQueue

	// posQueries maps outstanding position-query ids to their reply
	// callbacks.
	nextQueryID uint64
	posQueries  map[uint64]func(from netsim.NodeID, pos txn.FragPos)

	// multi-fragment 2PC state: coordinator rounds by coordinator txn
	// id, prepared parts by (mid, fragment) and by lock-holder id.
	multiCoords map[txn.ID]*multiCoord
	multiParts  map[partKey]*multiPart
	multiByPid  map[txn.ID]*multiPart

	// snapJournal records snapshot installations durably (a real system
	// would fsync the installed state): like the WAL and the broadcast
	// journal, it survives SimulateCrashRestart, which replays it before
	// the retained broadcast tail.
	snapJournal []snapJournalEntry

	// appHandler, when set, receives transport payloads no engine
	// demultiplexer claims — the extension point application layers
	// (the workload's operation forwarding) use to exchange their own
	// wire messages. Runs on the engine context like every other
	// transport delivery.
	appHandler func(from netsim.NodeID, payload any)
	// onAgentMoved, when set, observes token handoffs announced via
	// AnnounceAgentMove (including this node's own), after the token
	// map was updated.
	onAgentMoved func(agent fragments.AgentID, newHome netsim.NodeID)
}

type remoteHolder struct {
	from    netsim.NodeID
	leaseEv *simtime.Event
}

type remoteQueue struct {
	from netsim.NodeID
	obj  fragments.ObjectID
}

func newNode(cl *Cluster, id netsim.NodeID) *Node {
	n := &Node{
		id:           id,
		cl:           cl,
		store:        storage.New(id, cl.cat),
		tr:           cl.Trace(id),
		active:       make(map[txn.ID]*activeTxn),
		streams:      make(map[fragments.FragmentID]*streamState),
		remoteHeld:   make(map[txn.ID]*remoteHolder),
		remoteQueued: make(map[txn.ID]remoteQueue),
		posQueries:   make(map[uint64]func(netsim.NodeID, txn.FragPos)),
	}
	n.locks = n.newLockManager()
	var burst broadcast.BurstSink
	if cl.cfg.ApplyShards > 1 {
		n.apply = newApplyState(cl, id)
		burst = nodeBurstSink{n}
	}
	n.bcast = broadcast.New(id, cl.tr, cl.timer(),
		broadcast.Config{
			GossipInterval:  int64(cl.cfg.GossipInterval),
			BatchFlushDelay: int64(cl.cfg.BatchFlushDelay),
			BatchMaxCount:   cl.cfg.BatchMaxCount,
			BatchMaxBytes:   cl.cfg.BatchMaxBytes,
			Compaction:      cl.cfg.Compaction,
			CompactRetain:   cl.cfg.CompactRetain,
			PeerLiveRounds:  cl.cfg.PeerLiveRounds,
			Snapshot:        nodeSnapshotter{n},
			Metrics:         cl.bstats,
			Registry:        cl.reg,
			SizeOf:          wire.Size,
			Trace:           n.tr,
			Burst:           burst,
		},
		n.handleBroadcast)
	cl.tr.SetHandler(id, n.handleTransport)
	return n
}

// newLockManager builds the node's lock table and, when tracing is
// enabled, installs the blocked-path observer that maps lock-manager
// occurrences onto flight-recorder events. Crash recovery rebuilds the
// table through the same constructor so the observer survives restarts.
// With the sharded apply path enabled, the table is sharded by the
// object's fragment — the same mapping the apply scheduler uses, so a
// shard worker's acquisitions stay inside its own lock shard.
func (n *Node) newLockManager() *lock.Manager {
	var m *lock.Manager
	if k := n.cl.cfg.ApplyShards; k > 1 {
		cl := n.cl
		m = lock.NewSharded(k, func(o fragments.ObjectID) int {
			if f, ok := cl.cat.FragmentOf(o); ok {
				return cl.ShardOfFragment(f)
			}
			return lock.HashShard(string(o), k)
		})
	} else {
		m = lock.NewManager()
	}
	if n.tr.Enabled() {
		m.AddObserver(func(id txn.ID, o fragments.ObjectID, mode lock.Mode, ev lock.TraceEvent) {
			kind := trace.KLockWait
			switch ev {
			case lock.TraceGrant:
				kind = trace.KLockGrant
			case lock.TraceDeny:
				kind = trace.KLockDeadlock
			}
			n.tr.Emit(trace.Event{Kind: kind, Txn: id, Obj: o, Note: mode.String()})
		})
	}
	if reg := n.cl.reg; reg != nil {
		cl := n.cl
		m.AddObserver(func(id txn.ID, o fragments.ObjectID, mode lock.Mode, ev lock.TraceEvent) {
			if ev != lock.TraceWait {
				return
			}
			if f, ok := cl.cat.FragmentOf(o); ok {
				reg.IncLockWait(f, id.Origin)
			}
		})
	}
	return m
}

// ID returns the node's id.
func (n *Node) ID() netsim.NodeID { return n.id }

// Store exposes the node's local database copy (read-only use).
func (n *Node) Store() *storage.Store { return n.store }

// Broadcaster exposes the node's broadcast endpoint.
func (n *Node) Broadcaster() *broadcast.Broadcaster { return n.bcast }

// stream returns (creating if needed) the stream state for a fragment.
func (n *Node) stream(f fragments.FragmentID) *streamState {
	st, ok := n.streams[f]
	if !ok {
		st = &streamState{
			pending:   make(map[txn.FragPos]txn.Quasi),
			recovered: make(map[txn.ID]bool),
			prepared:  make(map[txn.ID]txn.Quasi),
			seen:      make(map[txn.ID]bool),
		}
		n.streams[f] = st
	}
	return st
}

// StreamPos reports the last installed position of a fragment's update
// stream at this node.
func (n *Node) StreamPos(f fragments.FragmentID) txn.FragPos {
	return n.stream(f).last
}

// handleTransport demultiplexes raw transport deliveries.
func (n *Node) handleTransport(from netsim.NodeID, payload any) {
	if n.bcast.HandleMessage(from, payload) {
		return
	}
	switch m := payload.(type) {
	case lockReqMsg:
		n.serveLockRequest(m)
	case lockGrantMsg:
		n.handleLockGrant(m)
	case lockDenyMsg:
		n.handleLockDeny(m)
	case lockReleaseMsg:
		n.handleLockRelease(m)
	case forwardMsg:
		n.handleForwarded(m)
	case ackMsg:
		n.handleAck(m)
	case multiPrepareMsg:
		n.handleMultiPrepare(m)
	case multiVoteMsg:
		n.handleMultiVote(m)
	case multiCommitMsg:
		n.handleMultiCommit(m)
	case multiAbortMsg:
		n.handleMultiAbort(m)
	case posQueryMsg:
		n.cl.tr.Send(n.id, m.From, posReplyMsg{
			ID: m.ID, Fragment: m.Fragment, Pos: n.stream(m.Fragment).last, From: n.id,
		})
	case posReplyMsg:
		if fn, ok := n.posQueries[m.ID]; ok {
			fn(m.From, m.Pos)
		}
	default:
		if n.appHandler != nil {
			n.appHandler(from, m)
		}
	}
}

// SetAppHandler installs the application-layer handler for transport
// payloads the engine itself does not recognize. Payload types must be
// gob-registered for real deployments (see wiretypes.go's contract).
func (n *Node) SetAppHandler(fn func(from netsim.NodeID, payload any)) {
	n.appHandler = fn
}

// SendApp sends an application payload to a peer node over the
// cluster's transport; it is delivered to the peer's app handler.
func (n *Node) SendApp(to netsim.NodeID, payload any) {
	n.cl.tr.Send(n.id, to, payload)
}

// SetAgentMovedHook installs an observer for AnnounceAgentMove
// handoffs applied at this node.
func (n *Node) SetAgentMovedHook(fn func(agent fragments.AgentID, newHome netsim.NodeID)) {
	n.onAgentMoved = fn
}

// handleBroadcast consumes messages delivered by the reliable broadcast
// in per-origin FIFO order.
func (n *Node) handleBroadcast(origin netsim.NodeID, seq uint64, payload any) {
	switch m := payload.(type) {
	case txn.Quasi:
		n.ingestQuasi(m)
	case m0Msg:
		n.handleM0(m)
	case prepareMsg:
		n.handlePrepare(origin, m)
	case commitCmdMsg:
		n.handleCommitCmd(m)
	case abortCmdMsg:
		n.handleAbortCmd(m)
	case agentMovedMsg:
		n.applyAgentMoved(m)
	}
}

// applyAgentMoved repoints a commutative agent's tokens at its new
// home. MoveAgent is idempotent, so the announcing node's own delivery
// (which already applied the move locally) is harmless.
func (n *Node) applyAgentMoved(m agentMovedMsg) {
	if _, ok := n.cl.tokens.Home(m.Agent); !ok {
		// Unknown agent: a process whose token map never learned it (not
		// possible today — schemas are static) ignores the handoff.
		return
	}
	_ = n.cl.tokens.MoveAgent(m.Agent, m.NewHome)
	if n.onAgentMoved != nil {
		n.onAgentMoved(m.Agent, m.NewHome)
	}
}

// AnnounceAgentMove hands a fully commutative agent to a new home via
// a broadcast token handoff — the SingleNode deployment's movement
// protocol, where the §4.4 in-process protocols cannot run. It
// requires every fragment the agent holds to be commutative: their
// updates install unordered with node-composed positions, so the
// handoff needs no stream preparation. In-flight submissions racing
// the handoff are rejected with ErrNotHome at the old home and retried
// by the forwarding layer against the token map's new answer.
func (n *Node) AnnounceAgentMove(agent fragments.AgentID, to netsim.NodeID) error {
	fs := n.cl.tokens.FragmentsOf(agent)
	if len(fs) == 0 {
		return fmt.Errorf("core: unknown agent %q", agent)
	}
	for _, f := range fs {
		if !n.cl.IsCommutative(f) {
			return fmt.Errorf("core: agent %q holds non-commutative fragment %q; use an agentmove protocol", agent, f)
		}
	}
	if home, ok := n.cl.tokens.Home(agent); ok && home == to {
		return fmt.Errorf("core: agent %q already homed at node %d", agent, to)
	}
	n.bcast.Send(agentMovedMsg{Agent: agent, NewHome: to})
	n.applyAgentMoved(agentMovedMsg{Agent: agent, NewHome: to})
	return nil
}

// ingestQuasi feeds a quasi-transaction into its fragment's stream,
// applying in position order and buffering gaps.
func (n *Node) ingestQuasi(q txn.Quasi) {
	if !n.cl.IsReplica(q.Fragment, n.id) {
		// Partial replication: this node relays the broadcast stream but
		// installs nothing.
		return
	}
	st := n.stream(q.Fragment)
	if n.cl.IsCommutative(q.Fragment) {
		if st.seen[q.Txn] {
			return
		}
		st.seen[q.Txn] = true
		n.applyQuasiUnordered(q.Fragment, st, q)
		return
	}
	switch {
	case q.Pos.Epoch < st.last.Epoch:
		// Old-epoch straggler: a missing transaction (Section 4.4.3).
		n.handleStraggler(st, q)
	case q.Pos.Epoch > st.last.Epoch:
		// Future epoch: the M0 announcement has not arrived yet; buffer.
		st.pending[q.Pos] = q
	case q.Pos.Seq <= st.last.Seq:
		// Duplicate (e.g. the home node's own local delivery).
	default:
		st.pending[q.Pos] = q
		n.drainStream(q.Fragment, st)
	}
}

// drainStream applies buffered quasi-transactions that are next in
// order, as long as none parks on locks. With the sharded apply path
// enabled, installation is handed to the fragment's apply shard
// instead of happening inline.
func (n *Node) drainStream(f fragments.FragmentID, st *streamState) {
	if n.apply != nil {
		n.dispatchShard(f, st)
		return
	}
	for !st.applying {
		next := st.last.Next()
		q, ok := st.pending[next]
		if !ok {
			return
		}
		delete(st.pending, next)
		n.applyQuasi(f, st, q)
	}
}

// handleStraggler deals with an old-epoch quasi-transaction arriving
// after the fragment moved epochs.
func (n *Node) handleStraggler(st *streamState, q txn.Quasi) {
	if st.recovering {
		n.recoverMissing(q.Fragment, st, q)
		return
	}
	if st.forward && q.Pos.Epoch == st.oldEpoch && q.Pos.Seq > st.oldInstalled {
		// Rule B(2): do not process; forward to the new home.
		n.cl.stats.QuasiForwarded.Add(1)
		n.cl.reg.IncForward(q.Fragment, q.Home)
		if n.tr.Enabled() {
			n.tr.Emit(trace.Event{Kind: trace.KQuasiForward, Txn: q.Txn,
				Frag: q.Fragment, Pos: q.Pos, Peer: st.forwardTo, HasPeer: true})
		}
		n.cl.tr.Send(n.id, st.forwardTo, forwardMsg{Q: q})
	}
	// Otherwise: duplicate of something installed before the switch.
}

// notifyStreamWaiters runs and clears stream-advance callbacks.
func (n *Node) notifyStreamWaiters(st *streamState) {
	if len(st.waiters) == 0 {
		return
	}
	ws := st.waiters
	st.waiters = nil
	for _, w := range ws {
		w()
	}
}

// QueryStreamPos asks every other node for its current stream position
// of fragment f. Replies (from nodes reachable now or later) invoke
// onReply; the caller counts them and applies its own quorum and
// timeout policy. EndQuery stops the collection.
func (n *Node) QueryStreamPos(f fragments.FragmentID, onReply func(from netsim.NodeID, pos txn.FragPos)) (queryID uint64) {
	n.nextQueryID++
	id := n.nextQueryID
	n.posQueries[id] = onReply
	for p := 0; p < n.cl.cfg.N; p++ {
		if netsim.NodeID(p) == n.id {
			continue
		}
		n.cl.tr.Send(n.id, netsim.NodeID(p), posQueryMsg{ID: id, Fragment: f, From: n.id})
	}
	return id
}

// EndQuery stops delivering replies for a query started with
// QueryStreamPos.
func (n *Node) EndQuery(id uint64) { delete(n.posQueries, id) }

// WaitForStream invokes fn once the fragment's stream at this node has
// reached at least pos (immediately if it already has). Used by the
// move-with-sequence-number protocol (Section 4.4.2B).
func (n *Node) WaitForStream(f fragments.FragmentID, pos txn.FragPos, fn func()) {
	st := n.stream(f)
	var check func()
	check = func() {
		if !pos.Less(st.last) && pos != st.last {
			st.waiters = append(st.waiters, check)
			return
		}
		fn()
	}
	check()
}

// sortedWriteObjects returns a quasi-transaction's write set in
// deterministic order.
func sortedWriteObjects(ws []txn.WriteOp) []fragments.ObjectID {
	out := make([]fragments.ObjectID, 0, len(ws))
	for _, w := range ws {
		out = append(out, w.Object)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
