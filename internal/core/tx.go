package core

import (
	"fmt"

	"fragdb/internal/fragments"
	"fragdb/internal/history"
	"fragdb/internal/netsim"
	"fragdb/internal/simtime"
	"fragdb/internal/txn"
)

// TxnSpec describes a transaction to submit.
type TxnSpec struct {
	// Agent is the initiating agent. Update transactions require the
	// agent to hold Fragment's token with this node as its home.
	Agent fragments.AgentID
	// Fragment is the fragment this transaction updates; empty means
	// read-only (initiable by any agent, per Section 2.2).
	Fragment fragments.FragmentID
	// Label tags the transaction for results and debugging.
	Label string
	// Program is the transaction body. It runs on its own goroutine and
	// interacts with the database only through the Tx handle. A non-nil
	// return aborts the transaction.
	Program func(tx *Tx) error
	// Timeout overrides the cluster's TxnTimeout for this transaction.
	Timeout simtime.Duration
	// Origin, when OriginSet is true, records the node where the
	// operation behind this transaction entered the system — a client
	// request forwarded to the agent's home executes there but
	// originated here. It only affects the labeled registry's
	// per-(fragment, origin) accounting, the access matrix adaptive
	// placement consumes; execution is unchanged. OriginSet
	// distinguishes an explicit origin of node 0 from the default (the
	// executing node).
	Origin    netsim.NodeID
	OriginSet bool
}

// TxnResult reports a transaction's outcome to its completion callback.
type TxnResult struct {
	ID        txn.ID
	Label     string
	Committed bool
	// Err is nil on commit; on abort it carries the cause (one of the
	// package sentinels, possibly wrapped, or the program's own error).
	Err error
	// Start and End are the submission and completion virtual times.
	Start, End simtime.Time
}

// Tx is a transaction's handle to the database. It is used only from
// within the transaction's Program.
type Tx struct {
	t *activeTxn
}

type reqKind int

const (
	reqRead reqKind = iota
	reqWrite
	reqThink
	reqDone
)

type request struct {
	kind  reqKind
	obj   fragments.ObjectID
	val   any
	think simtime.Duration
	err   error // for reqDone
}

type response struct {
	val   any
	known bool
	err   error
}

// activeTxn is the engine-side state of a running transaction.
type activeTxn struct {
	id   txn.ID
	spec TxnSpec
	node *Node

	reqCh  chan request
	respCh chan response

	// workspace: writes buffered until commit; reads see own writes.
	writeVals  map[fragments.ObjectID]any
	writeOrder []fragments.ObjectID
	reads      []history.ReadObs

	// remoteLocked tracks nodes holding remote read locks for us.
	remoteLocked map[netsim.NodeID]bool
	// pendingRemote is the object of an outstanding remote lock request
	// (at most one at a time; the program is blocked on it).
	pendingRemote *request

	// parked is the request blocked on a local lock grant.
	parked *request

	poisoned      error
	finished      bool
	finalizedFlag bool

	// multi marks a multi-fragment transaction (SubmitMulti);
	// waitingMulti is true while its two-phase commit is in flight.
	multi        bool
	waitingMulti bool

	start     simtime.Time
	timeoutEv *simtime.Event
	done      func(TxnResult)

	// majority-commit state.
	waitingMajority bool
	acks            map[netsim.NodeID]bool
	pendingQuasi    txn.Quasi
	majorityEv      *simtime.Event
}

// Read returns the current value of object o. Within an update
// transaction it sees the transaction's own uncommitted writes. The
// boolean-style "known" distinction is folded into the value: an object
// never written or loaded reads as nil.
func (tx *Tx) Read(o fragments.ObjectID) (any, error) {
	resp := tx.t.roundTrip(request{kind: reqRead, obj: o})
	return resp.val, resp.err
}

// ReadInt is a convenience wrapper reading an int64 value (the common
// case in the banking and airline examples). Unset objects read as 0.
func (tx *Tx) ReadInt(o fragments.ObjectID) (int64, error) {
	v, err := tx.Read(o)
	if err != nil {
		return 0, err
	}
	switch x := v.(type) {
	case nil:
		return 0, nil
	case int64:
		return x, nil
	case int:
		return int64(x), nil
	default:
		return 0, fmt.Errorf("core: object %q holds %T, not an integer", o, v)
	}
}

// Write records a new value for object o, visible to subsequent reads
// in this transaction and installed atomically at commit.
func (tx *Tx) Write(o fragments.ObjectID, v any) error {
	resp := tx.t.roundTrip(request{kind: reqWrite, obj: o, val: v})
	return resp.err
}

// Think consumes d of virtual time inside the transaction, modelling
// computation or user interaction between database operations.
func (tx *Tx) Think(d simtime.Duration) {
	tx.t.roundTrip(request{kind: reqThink, think: d})
}

// ID returns the transaction's identity.
func (tx *Tx) ID() txn.ID { return tx.t.id }

// Node returns the home node's id.
func (tx *Tx) Node() netsim.NodeID { return tx.t.node.id }

// roundTrip sends one request to the engine and waits for the response.
func (t *activeTxn) roundTrip(req request) response {
	t.reqCh <- req
	return <-t.respCh
}
