package core

import (
	"errors"
	"testing"
	"time"

	"fragdb/internal/netsim"
)

// multiCluster: fragments FA (agent node 0), FB (agent node 1), with
// one object each, plus FC (agent node 2).
func multiCluster(t *testing.T) *Cluster {
	t.Helper()
	cl := NewCluster(Config{N: 3, Option: UnrestrictedReads, Seed: 23})
	cl.Catalog().AddFragment("FA", "a")
	cl.Catalog().AddFragment("FB", "b")
	cl.Catalog().AddFragment("FC", "c")
	cl.Tokens().Assign("FA", "node:0", 0)
	cl.Tokens().Assign("FB", "node:1", 1)
	cl.Tokens().Assign("FC", "node:2", 2)
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	cl.Load("a", int64(0))
	cl.Load("b", int64(0))
	cl.Load("c", int64(0))
	return cl
}

// transferAB moves amount from a to b in one multi-fragment
// transaction coordinated at node.
func transferAB(cl *Cluster, node netsim.NodeID, amount int64, timeout time.Duration) *TxnResult {
	var res TxnResult
	cl.Node(node).SubmitMulti(TxnSpec{
		Label: "transfer", Timeout: timeout,
		Program: func(tx *Tx) error {
			av, err := tx.ReadInt("a")
			if err != nil {
				return err
			}
			bv, err := tx.ReadInt("b")
			if err != nil {
				return err
			}
			if err := tx.Write("a", av-amount); err != nil {
				return err
			}
			return tx.Write("b", bv+amount)
		},
	}, func(r TxnResult) { res = r })
	return &res
}

func TestMultiFragmentCommit(t *testing.T) {
	cl := multiCluster(t)
	defer cl.Shutdown()
	res := transferAB(cl, 2, 40, 0) // coordinator is neither agent home
	if !cl.Settle(30 * time.Second) {
		t.Fatal("did not settle")
	}
	if !res.Committed {
		t.Fatalf("res = %+v", res)
	}
	for i := 0; i < 3; i++ {
		n := netsim.NodeID(i)
		a, _ := cl.Node(n).Store().Get("a")
		b, _ := cl.Node(n).Store().Get("b")
		if a != int64(-40) || b != int64(40) {
			t.Errorf("node %d: a=%v b=%v", i, a, b)
		}
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	// The per-fragment installations are normal stream members:
	// fragmentwise serializability still verifies.
	if err := cl.Recorder().CheckFragmentwise(); err != nil {
		t.Errorf("fragmentwise: %v", err)
	}
}

func TestMultiFragmentAbortsWhenAgentUnreachable(t *testing.T) {
	cl := multiCluster(t)
	defer cl.Shutdown()
	// FB's agent home (node 1) is unreachable from the coordinator.
	cl.Net().Partition([]netsim.NodeID{0, 2}, []netsim.NodeID{1})
	res := transferAB(cl, 0, 40, 500*time.Millisecond)
	cl.RunFor(2 * time.Second)
	if res.Committed || !errors.Is(res.Err, ErrTimeout) {
		t.Fatalf("res = %+v, want timeout", res)
	}
	// Nothing installed anywhere — atomicity across fragments.
	cl.Net().Heal()
	cl.Settle(120 * time.Second) // let the prepared part's lease expire
	for i := 0; i < 3; i++ {
		n := netsim.NodeID(i)
		a, _ := cl.Node(n).Store().Get("a")
		b, _ := cl.Node(n).Store().Get("b")
		if a != int64(0) || b != int64(0) {
			t.Errorf("node %d: a=%v b=%v, want untouched", i, a, b)
		}
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
}

func TestMultiFragmentInterleavesWithSingleFragmentTraffic(t *testing.T) {
	cl := multiCluster(t)
	defer cl.Shutdown()
	// Regular single-fragment updates on FA keep flowing while a
	// transfer runs; the streams stay single and uninterrupted.
	for i := 0; i < 3; i++ {
		at := time.Duration(i*30) * time.Millisecond
		cl.Sched().After(at, func() {
			cl.Node(0).Submit(TxnSpec{
				Agent: "node:0", Fragment: "FA",
				Program: func(tx *Tx) error {
					v, err := tx.ReadInt("a")
					if err != nil {
						return err
					}
					return tx.Write("a", v+1)
				},
			}, nil)
		})
	}
	res := transferAB(cl, 2, 10, 0)
	if !cl.Settle(60 * time.Second) {
		t.Fatal("did not settle")
	}
	if !res.Committed {
		t.Fatalf("transfer = %+v", res)
	}
	// a = 3 (increments) - 10 (transfer) in SOME serializable order per
	// fragment; the exact value depends on interleaving but all
	// replicas must agree and b must be exactly 10.
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	b0, _ := cl.Node(0).Store().Get("b")
	if b0 != int64(10) {
		t.Errorf("b = %v", b0)
	}
	if err := cl.Recorder().CheckFragmentwise(); err != nil {
		t.Errorf("fragmentwise: %v", err)
	}
	// FA's stream has 4 updates: 3 increments + 1 transfer part.
	if pos := cl.Node(0).StreamPos("FA"); pos.Seq != 4 {
		t.Errorf("FA stream pos = %v, want e0#4", pos)
	}
}

func TestMultiRejectsUnknownObject(t *testing.T) {
	cl := multiCluster(t)
	defer cl.Shutdown()
	var werr error
	var res TxnResult
	cl.Node(0).SubmitMulti(TxnSpec{
		Program: func(tx *Tx) error {
			werr = tx.Write("never-created", int64(1))
			return werr
		},
	}, func(r TxnResult) { res = r })
	cl.Settle(10 * time.Second)
	if !errors.Is(werr, ErrUnknownObject) || res.Committed {
		t.Errorf("werr=%v res=%+v", werr, res)
	}
}

func TestMultiRejectsFragmentField(t *testing.T) {
	cl := multiCluster(t)
	defer cl.Shutdown()
	var res TxnResult
	cl.Node(0).SubmitMulti(TxnSpec{
		Fragment: "FA",
		Program:  func(tx *Tx) error { return nil },
	}, func(r TxnResult) { res = r })
	cl.Settle(10 * time.Second)
	if res.Err == nil {
		t.Error("Fragment field accepted in SubmitMulti")
	}
}

func TestMultiReadOnlyDegeneratesToCommit(t *testing.T) {
	cl := multiCluster(t)
	defer cl.Shutdown()
	var res TxnResult
	cl.Node(0).SubmitMulti(TxnSpec{
		Program: func(tx *Tx) error {
			_, err := tx.ReadInt("a")
			return err
		},
	}, func(r TxnResult) { res = r })
	cl.Settle(10 * time.Second)
	if !res.Committed {
		t.Errorf("read-only multi = %+v", res)
	}
}

func TestMultiPartLeaseExpiresOnLostCoordinator(t *testing.T) {
	cl := NewCluster(Config{N: 3, Option: UnrestrictedReads, Seed: 29,
		MultiLease: 2 * time.Second})
	cl.Catalog().AddFragment("FA", "a")
	cl.Catalog().AddFragment("FB", "b")
	cl.Catalog().AddFragment("FC", "c")
	cl.Tokens().Assign("FA", "node:0", 0)
	cl.Tokens().Assign("FB", "node:1", 1)
	cl.Tokens().Assign("FC", "node:2", 2)
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	cl.Load("a", int64(0))
	cl.Load("b", int64(0))
	defer cl.Shutdown()

	// Coordinator (node 2) sends prepares, then is cut off before it
	// can decide: node 1's prepared part must self-release when the
	// lease expires, unblocking local traffic on b.
	transferAB(cl, 2, 5, time.Hour)
	cl.RunFor(100 * time.Millisecond)
	cl.Net().Partition([]netsim.NodeID{0, 1}, []netsim.NodeID{2})
	cl.RunFor(3 * time.Second) // lease expires
	var after TxnResult
	cl.Node(1).Submit(TxnSpec{
		Agent: "node:1", Fragment: "FB",
		Program: func(tx *Tx) error { return tx.Write("b", int64(7)) },
	}, func(r TxnResult) { after = r })
	cl.RunFor(2 * time.Second)
	if !after.Committed {
		t.Fatalf("fragment wedged after lost coordinator: %+v", after)
	}
}
