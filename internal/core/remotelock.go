package core

import (
	"fragdb/internal/fragments"
	"fragdb/internal/history"
	"fragdb/internal/lock"
	"fragdb/internal/netsim"
	"fragdb/internal/trace"
	"fragdb/internal/txn"
)

// This file implements the Section 4.1 remote read-lock protocol.
//
// Under the ReadLocks option, a transaction reading a data object
// outside the fragment it updates must lock the object at the home node
// of the agent controlling that fragment — "it is clearly sufficient to
// acquire the lock ... from the home node of the agent in charge of the
// fragment containing that object, for that is the only node at which
// the object can be updated". The grant carries the authoritative
// current value, so the reader observes the primary copy rather than a
// possibly stale replica.
//
// Locks held by remote readers are leased: if the requester is
// partitioned away before releasing (its release message is lost), the
// serving node reclaims the lock after Config.RemoteLockLease.

// serveLockRequest handles a remote shared-lock request at the agent's
// home node.
func (n *Node) serveLockRequest(m lockReqMsg) {
	granted, err := n.locks.Acquire(m.Txn, m.Object, lock.Shared)
	if err != nil {
		if reg := n.cl.reg; reg != nil {
			if f, ok := n.cl.cat.FragmentOf(m.Object); ok {
				reg.IncRemoteDeny(f, m.From)
			}
		}
		n.cl.tr.Send(n.id, m.From, lockDenyMsg{Txn: m.Txn, Object: m.Object})
		return
	}
	if granted {
		n.grantRemote(m.Txn, m.From, m.Object)
		return
	}
	n.remoteQueued[m.Txn] = remoteQueue{from: m.From, obj: m.Object}
}

// grantRemote replies to a remote lock request with the current value,
// registering the lease.
func (n *Node) grantRemote(id txn.ID, from netsim.NodeID, o fragments.ObjectID) {
	ver, known := n.store.GetVersion(o)
	if rh, ok := n.remoteHeld[id]; ok {
		// Additional object for an already-known remote holder: refresh
		// the lease.
		n.cl.sched.Cancel(rh.leaseEv)
	}
	rh := &remoteHolder{from: from}
	rh.leaseEv = n.cl.sched.After(n.cl.cfg.RemoteLockLease, func() { n.expireRemote(id) })
	n.remoteHeld[id] = rh
	msg := lockGrantMsg{Txn: id, Object: o, Known: known, Version: ver, From: n.id}
	if known {
		msg.Value = ver.Value
	}
	n.cl.tr.Send(n.id, from, msg)
}

// expireRemote reclaims locks leaked by an unreachable remote reader.
func (n *Node) expireRemote(id txn.ID) {
	rh, ok := n.remoteHeld[id]
	if !ok {
		return
	}
	if n.tr.Enabled() {
		n.tr.Emit(trace.Event{Kind: trace.KRemoteLockExpire, Txn: id,
			Peer: rh.from, HasPeer: true})
	}
	delete(n.remoteHeld, id)
	n.onGrants(n.locks.Release(id))
}

// handleLockGrant resumes the local transaction waiting on the remote
// read.
func (n *Node) handleLockGrant(m lockGrantMsg) {
	t, ok := n.active[m.Txn]
	if !ok || t.finalizedFlag {
		// We aborted while the grant was in flight: release it.
		n.cl.tr.Send(n.id, m.From, lockReleaseMsg{Txn: m.Txn})
		return
	}
	if t.pendingRemote == nil || t.pendingRemote.obj != m.Object {
		return // stale or duplicate grant
	}
	t.pendingRemote = nil
	t.remoteLocked[m.From] = true
	if n.tr.Enabled() {
		n.tr.Emit(trace.Event{Kind: trace.KRemoteLockGrant, Txn: m.Txn,
			Obj: m.Object, Peer: m.From, HasPeer: true})
	}
	obs := history.ReadObs{Object: m.Object}
	if m.Known {
		obs.FromTxn = m.Version.Txn
		obs.Pos = m.Version.Pos
	}
	t.reads = append(t.reads, obs)
	t.respCh <- response{val: m.Value, known: m.Known}
	n.serve(t)
}

// handleLockDeny aborts the local transaction whose remote request was
// refused by the serving node's deadlock detection.
func (n *Node) handleLockDeny(m lockDenyMsg) {
	t, ok := n.active[m.Txn]
	if !ok || t.finalizedFlag || t.pendingRemote == nil || t.pendingRemote.obj != m.Object {
		return
	}
	n.cl.stats.Deadlocks.Add(1)
	if n.tr.Enabled() {
		n.tr.Emit(trace.Event{Kind: trace.KRemoteLockDeny, Txn: m.Txn, Obj: m.Object})
	}
	t.pendingRemote = nil
	t.poisoned = ErrRemoteDenied
	t.respCh <- response{err: ErrRemoteDenied}
	n.serve(t)
}

// handleLockRelease frees every lock the remote transaction holds here.
func (n *Node) handleLockRelease(m lockReleaseMsg) {
	if rh, ok := n.remoteHeld[m.Txn]; ok {
		n.cl.sched.Cancel(rh.leaseEv)
		delete(n.remoteHeld, m.Txn)
	}
	delete(n.remoteQueued, m.Txn)
	n.onGrants(n.locks.Release(m.Txn))
}
