package core

import (
	"testing"
	"time"

	"fragdb/internal/fragments"
	"fragdb/internal/netsim"
	"fragdb/internal/simtime"
)

// TestLossyNetworkStillConverges: with 20% random message loss on every
// link — on top of a partition episode — the anti-entropy broadcast
// still delivers every quasi-transaction and the cluster converges with
// all guarantees intact.
func TestLossyNetworkStillConverges(t *testing.T) {
	cl := NewCluster(Config{
		N: 4, Option: UnrestrictedReads, Seed: 51,
		LossProb:       0.2,
		GossipInterval: 30 * time.Millisecond,
	})
	for i := 0; i < 4; i++ {
		f := fragments.FragmentID([]string{"LA", "LB", "LC", "LD"}[i])
		if err := cl.Catalog().AddFragment(f, fragments.ObjectID(string(f)+"/x")); err != nil {
			t.Fatal(err)
		}
		cl.Tokens().Assign(f, fragments.NodeAgent(netsim.NodeID(i)), netsim.NodeID(i))
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"LA", "LB", "LC", "LD"} {
		cl.Load(fragments.ObjectID(f+"/x"), int64(0))
	}
	defer cl.Shutdown()

	const rounds = 15
	for r := 0; r < rounds; r++ {
		at := simtime.Time(time.Duration(r*50) * time.Millisecond)
		cl.Sched().At(at, func() {
			for i := 0; i < 4; i++ {
				node := netsim.NodeID(i)
				f := fragments.FragmentID([]string{"LA", "LB", "LC", "LD"}[i])
				obj := fragments.ObjectID(string(f) + "/x")
				cl.Node(node).Submit(TxnSpec{
					Agent: fragments.NodeAgent(node), Fragment: f,
					Program: func(tx *Tx) error {
						v, err := tx.ReadInt(obj)
						if err != nil {
							return err
						}
						return tx.Write(obj, v+1)
					},
				}, nil)
			}
		})
	}
	cl.Net().ScheduleSplit(simtime.Time(200*time.Millisecond),
		[]netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
	cl.Net().ScheduleHeal(simtime.Time(500 * time.Millisecond))
	cl.RunFor(time.Second)
	if !cl.Settle(5 * time.Minute) {
		t.Fatal("did not settle under loss")
	}
	if cl.Net().Stats().DroppedLoss == 0 {
		t.Fatal("loss model inactive (test vacuous)")
	}
	if got := cl.Stats().Committed.Load(); got != rounds*4 {
		t.Errorf("committed = %d / %d", got, rounds*4)
	}
	for _, f := range []string{"LA", "LB", "LC", "LD"} {
		if v, _ := cl.Node(0).Store().Get(fragments.ObjectID(f + "/x")); v != int64(rounds) {
			t.Errorf("%s/x = %v, want %d", f, v, rounds)
		}
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	if err := cl.Recorder().CheckFragmentwise(); err != nil {
		t.Errorf("fragmentwise: %v", err)
	}
}

// TestLossyRemoteLocksTimeOutGracefully: direct request/reply protocols
// (the 4.1 remote lock) see real losses; a lost grant or release is
// absorbed by the transaction timeout and the server-side lease — no
// wedging, no inconsistency.
func TestLossyRemoteLocksTimeOutGracefully(t *testing.T) {
	cl := NewCluster(Config{
		N: 2, Option: ReadLocks, Seed: 53,
		LossProb:        0.4, // very lossy
		RemoteLockLease: time.Second,
	})
	cl.Catalog().AddFragment("P", "P/x")
	cl.Catalog().AddFragment("Q", "Q/x")
	cl.Tokens().Assign("P", "node:0", 0)
	cl.Tokens().Assign("Q", "node:1", 1)
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	cl.Load("P/x", int64(0))
	cl.Load("Q/x", int64(0))
	defer cl.Shutdown()

	committed := 0
	for i := 0; i < 10; i++ {
		cl.Node(0).Submit(TxnSpec{
			Agent: "node:0", Fragment: "P", Timeout: 300 * time.Millisecond,
			Program: func(tx *Tx) error {
				if _, err := tx.Read("Q/x"); err != nil {
					return err
				}
				v, err := tx.ReadInt("P/x")
				if err != nil {
					return err
				}
				return tx.Write("P/x", v+1)
			},
		}, func(r TxnResult) {
			if r.Committed {
				committed++
			}
		})
		cl.RunFor(500 * time.Millisecond)
	}
	cl.Settle(2 * time.Minute)
	// Some succeed, some time out — but nothing wedges and the
	// committed prefix is consistent everywhere.
	if committed == 0 {
		t.Error("nothing committed under 40% loss (timeouts too aggressive?)")
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	if v, _ := cl.Node(1).Store().Get("P/x"); v != int64(committed) {
		t.Errorf("P/x = %v, want %d", v, committed)
	}
}
