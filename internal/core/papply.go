package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fragdb/internal/fragments"
	"fragdb/internal/lock"
	"fragdb/internal/metrics"
	"fragdb/internal/simtime"
	"fragdb/internal/storage"
	"fragdb/internal/txn"
)

// ParallelApplier is the real-time counterpart of the netsim shard
// scheduler in shard.go: k worker goroutines installing
// quasi-transactions into a store under a (sharded) lock manager. The
// netsim path fakes concurrency with overlapping virtual-time windows
// so chaos repros stay deterministic; this runtime is what an rtnet
// deployment uses, with genuine goroutine parallelism and therefore no
// determinism guarantee.
//
// The ordering contract is the same: every fragment hashes to one
// worker (the same fragment→shard mapping the sharded lock manager
// uses), and each worker consumes its channel FIFO, so
// quasi-transactions of one fragment install in submission order while
// disjoint fragments proceed in parallel. SubmitBatch mirrors the
// netsim run semantics — a contiguous same-fragment run pays one
// combined lock acquisition and one release — and fans multi-fragment
// batches out in ascending fragment-ID order, the shard-ordering
// protocol's discipline.
type ParallelApplier struct {
	cfg    ParallelApplierConfig
	shards []chan []txn.Quasi
	wg     sync.WaitGroup

	applied atomic.Uint64

	// waitMu guards waiters: runs parked on locks held by external
	// transactions (the engine's local-transaction side), woken by the
	// grants their Release produces.
	waitMu  sync.Mutex
	waiters map[txn.ID]*papplyWaiter
}

// ParallelApplierConfig configures a ParallelApplier.
type ParallelApplierConfig struct {
	// Shards is the worker count; the lock manager should be sharded
	// with the same count and a fragment-based placement so each
	// worker's acquisitions stay inside its own lock shard. Minimum 1.
	Shards int
	// Store receives the installed writes.
	Store *storage.Store
	// Locks is the lock manager all appliers (and any concurrent local
	// transactions) share.
	Locks *lock.Manager
	// Now supplies timestamps for the latency histogram. Injected so
	// real-time callers pass wall time and tests pass whatever clock
	// they run under (keeping this package free of wall-clock reads).
	// Nil disables latency accounting.
	Now func() simtime.Time
	// Latency, if non-nil (and Now is set), observes each
	// quasi-transaction's submit-to-install latency.
	Latency *metrics.Histogram
	// Registry, if non-nil, counts each installed quasi-transaction in
	// the labeled registry (frag_applies_total by origin home, plus
	// frag_quasi_lag_seconds when Now is set). Nil-safe no-op when nil.
	Registry *metrics.Registry
	// QueueDepth bounds each worker's channel (default 1024).
	QueueDepth int
}

// papplyWaiter parks one run on its missing lock grants.
type papplyWaiter struct {
	remaining map[fragments.ObjectID]bool
	done      chan struct{}
	// armed is set once the acquisition loop has finished issuing
	// requests; only then may a grant close done (grants can arrive
	// concurrently, mid-loop).
	armed  bool
	closed bool
}

// NewParallelApplier starts the worker pool. Close releases it.
func NewParallelApplier(cfg ParallelApplierConfig) *ParallelApplier {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	pa := &ParallelApplier{cfg: cfg, waiters: make(map[txn.ID]*papplyWaiter)}
	pa.shards = make([]chan []txn.Quasi, cfg.Shards)
	for i := range pa.shards {
		ch := make(chan []txn.Quasi, cfg.QueueDepth)
		pa.shards[i] = ch
		pa.wg.Add(1)
		go pa.worker(ch)
	}
	return pa
}

// ShardOf maps a fragment to its worker index.
func (pa *ParallelApplier) ShardOf(f fragments.FragmentID) int {
	return lock.HashShard(string(f), len(pa.shards))
}

// Submit routes one quasi-transaction to its fragment's worker.
// Per-fragment FIFO: callers must submit each fragment's stream in
// order (the broadcast layer's delivery order).
func (pa *ParallelApplier) Submit(q txn.Quasi) {
	pa.shards[pa.ShardOf(q.Fragment)] <- []txn.Quasi{q}
}

// SubmitBatch routes a batch (e.g. one delivered DataBatch): the
// batch is grouped into same-fragment runs, each run installing under
// one combined lock acquisition, and the runs fan out to their shards
// in ascending fragment-ID order. Relative order within a fragment is
// preserved.
func (pa *ParallelApplier) SubmitBatch(qs []txn.Quasi) {
	if len(qs) == 0 {
		return
	}
	runs := make(map[fragments.FragmentID][]txn.Quasi)
	ids := make([]fragments.FragmentID, 0, 4)
	for _, q := range qs {
		if _, ok := runs[q.Fragment]; !ok {
			ids = append(ids, q.Fragment)
		}
		runs[q.Fragment] = append(runs[q.Fragment], q)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, f := range ids {
		pa.shards[pa.ShardOf(f)] <- runs[f]
	}
}

// Applied reports how many quasi-transactions have been installed.
func (pa *ParallelApplier) Applied() uint64 { return pa.applied.Load() }

// Close drains and stops the workers (all submitted work completes).
func (pa *ParallelApplier) Close() {
	for _, ch := range pa.shards {
		close(ch)
	}
	pa.wg.Wait()
}

// applyHandles caches a label's registry handles so the per-quasi cost
// is one plain map lookup instead of two sync.Map lookups (each boxing
// the string-keyed Label into an interface — an allocation per apply).
type applyHandles struct {
	applies metrics.Counter
	lag     *metrics.Histogram
}

func (pa *ParallelApplier) worker(ch chan []txn.Quasi) {
	defer pa.wg.Done()
	// Each worker owns its cache: labels are O(fragments × nodes), and a
	// fragment always hashes to the same worker, so caches stay small
	// and need no locking.
	var handles map[metrics.Label]applyHandles
	if pa.cfg.Registry != nil {
		handles = make(map[metrics.Label]applyHandles)
	}
	for run := range ch {
		pa.applyRun(run, handles)
	}
}

// handlesFor resolves (and memoizes) the registry handles for a label.
func (pa *ParallelApplier) handlesFor(cache map[metrics.Label]applyHandles, l metrics.Label) applyHandles {
	h, ok := cache[l]
	if !ok {
		h = applyHandles{
			applies: pa.cfg.Registry.Applies.At(l),
			lag:     pa.cfg.Registry.QuasiLag.At(l),
		}
		cache[l] = h
	}
	return h
}

// applyRun installs one same-fragment run: acquire the run's combined
// write set in sorted object order under the run's group owner (the
// first quasi's id), park on any lock an external transaction holds,
// install every quasi in run order, release once.
func (pa *ParallelApplier) applyRun(run []txn.Quasi, handles map[metrics.Label]applyHandles) {
	owner := run[0].Txn
	var at simtime.Time
	if pa.cfg.Now != nil {
		at = pa.cfg.Now()
	}
	objs := runWriteObjects(run)
	w := &papplyWaiter{remaining: make(map[fragments.ObjectID]bool, len(objs)),
		done: make(chan struct{})}
	for _, o := range objs {
		w.remaining[o] = true
	}
	pa.waitMu.Lock()
	pa.waiters[owner] = w
	pa.waitMu.Unlock()
	for _, o := range objs {
		for {
			granted, err := pa.cfg.Locks.Acquire(owner, o, lock.Exclusive)
			if err != nil {
				// Deadlock with an external holder. Committed updates have
				// priority (the engine wounds; here the holder is expected
				// to release or abort on its own) — retry until it does.
				runtime.Gosched()
				continue
			}
			if granted {
				pa.waitMu.Lock()
				delete(w.remaining, o)
				pa.waitMu.Unlock()
			}
			break
		}
	}
	pa.waitMu.Lock()
	w.armed = true
	ready := len(w.remaining) == 0
	if ready && !w.closed {
		w.closed = true
		close(w.done)
	}
	pa.waitMu.Unlock()
	<-w.done
	for _, q := range run {
		pa.cfg.Store.ApplyQuasi(q)
		pa.applied.Add(1)
	}
	if pa.cfg.Latency != nil && pa.cfg.Now != nil {
		d := pa.cfg.Now().Sub(at)
		for range run {
			pa.cfg.Latency.Observe(d)
		}
	}
	if handles != nil {
		// One handle lookup per run, not per quasi: the run is a single
		// fragment, and its quasis almost always share a home (the label's
		// other half), so the loop below only re-resolves on a home change
		// mid-run (an agent move landing inside one batch).
		var now simtime.Time
		hasNow := pa.cfg.Now != nil
		if hasNow {
			now = pa.cfg.Now()
		}
		l := metrics.Label{Frag: run[0].Fragment, Node: run[0].Home}
		h := pa.handlesFor(handles, l)
		for _, q := range run {
			if q.Home != l.Node {
				l.Node = q.Home
				h = pa.handlesFor(handles, l)
			}
			h.applies.Inc()
			if hasNow {
				h.lag.Observe(now.Sub(q.Stamp))
			}
		}
	}
	pa.waitMu.Lock()
	delete(pa.waiters, owner)
	pa.waitMu.Unlock()
	pa.grant(pa.cfg.Locks.Release(owner))
}

// grant wakes runs whose missing locks were just released.
func (pa *ParallelApplier) grant(grants []lock.Grant) {
	if len(grants) == 0 {
		return
	}
	pa.waitMu.Lock()
	for _, g := range grants {
		w := pa.waiters[g.Txn]
		if w == nil {
			continue
		}
		delete(w.remaining, g.Object)
		if w.armed && !w.closed && len(w.remaining) == 0 {
			w.closed = true
			close(w.done)
		}
	}
	pa.waitMu.Unlock()
}

// ExternalRelease is for the engine side sharing the lock manager with
// the applier: after releasing a local transaction's locks, pass the
// produced grants here so parked runs wake up.
func (pa *ParallelApplier) ExternalRelease(grants []lock.Grant) { pa.grant(grants) }
