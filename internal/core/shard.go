package core

import (
	"math/rand"
	"sort"

	"fragdb/internal/fragments"
	"fragdb/internal/lock"
	"fragdb/internal/netsim"
	"fragdb/internal/simtime"
	"fragdb/internal/trace"
	"fragdb/internal/txn"
)

// The sharded apply path (Config.ApplyShards > 1) replaces the serial
// quasi-transaction drain with per-shard apply workers. Every fragment
// hashes to one shard (the same mapping the sharded lock manager uses,
// so a shard worker's lock acquisitions stay inside its own lock
// shard), and each shard installs the contiguous pending runs of its
// fragments independently: runs of disjoint fragments overlap in
// virtual time, each run paying one combined lock acquisition and one
// ApplyLatency installation window.
//
// Determinism contract: under netsim everything below runs on the
// single-threaded scheduler. "Parallelism" is overlap of ApplyLatency
// windows in virtual time, sequenced by the scheduler's (time, seq)
// order; the only randomness is the pickup jitter drawn from a
// dedicated per-node rand.Rand seeded from Config.Seed, so a given
// seed always yields the same interleaving — chaos repros stay
// byte-identical. Within one fragment, runs never overlap
// (streamState.applying is the per-fragment latch), preserving the
// paper's per-stream total order; across fragments no ordering is
// promised, exactly the independence Section 4 grants disjoint
// fragments.

// applyShardState is one apply shard's dispatch slot: the fragments
// with a dispatched run waiting for the shard, and whether the shard
// is currently occupied (from pickup through installation).
type applyShardState struct {
	queue []fragments.FragmentID
	busy  bool
}

// applyState is a node's sharded-apply scheduler. Crash recovery
// replaces the whole value, so scheduled closures guard on pointer
// identity (n.apply == as) to die with the incarnation that made them.
type applyState struct {
	shards []applyShardState
	// rng staggers shard pickups. A dedicated generator — not the
	// scheduler's — so enabling sharding does not perturb the draw
	// sequence of existing seeded scenarios (loss, latency).
	rng *rand.Rand
}

func newApplyState(cl *Cluster, id netsim.NodeID) *applyState {
	return &applyState{
		shards: make([]applyShardState, cl.cfg.ApplyShards),
		rng:    rand.New(rand.NewSource(cl.cfg.Seed ^ (int64(id)+1)*0x1e3779b97f4a7c15)),
	}
}

// ShardOfFragment maps a fragment to its apply (and lock) shard index
// — 0 whenever the sharded apply path is disabled.
func (cl *Cluster) ShardOfFragment(f fragments.FragmentID) int {
	return lock.HashShard(string(f), cl.cfg.ApplyShards)
}

// dispatchShard is the sharded replacement for the serial drain loop:
// if fragment f has its next-in-order quasi-transaction pending, latch
// the stream and queue the fragment on its shard. An idle shard
// schedules its pickup after a seeded jitter so concurrently dispatched
// shards interleave reproducibly rather than in enqueue order.
func (n *Node) dispatchShard(f fragments.FragmentID, st *streamState) {
	if st.applying {
		return
	}
	if n.batchFrags != nil {
		// Mid-burst: note the fragment; the burst's end dispatches it
		// once, after every payload of the batch has been ingested, so
		// the whole batch rides one lock acquisition per fragment.
		n.batchFrags[f] = st
		return
	}
	if _, ok := st.pending[st.last.Next()]; !ok {
		return
	}
	st.applying = true
	as := n.apply
	si := n.cl.ShardOfFragment(f)
	s := &as.shards[si]
	s.queue = append(s.queue, f)
	if s.busy {
		return
	}
	s.busy = true
	jitter := simtime.Duration(as.rng.Int63n(int64(n.cl.cfg.ApplyLatency)/2 + 1))
	n.cl.sched.After(jitter, func() {
		if n.apply != as {
			return // crash/restart replaced this scheduler
		}
		n.shardStep(as, si)
	})
}

// shardStep runs one shard's dispatch loop: pop the next queued
// fragment, re-collect its contiguous pending run (the pending set may
// have shifted since dispatch — snapshot merges, epoch switches), and
// acquire the run's combined write set in one pass. A fully granted
// run installs after ApplyLatency with the shard held busy; a run
// parked on locks frees the shard for its other fragments and installs
// later via onGrants.
func (n *Node) shardStep(as *applyState, si int) {
	s := &as.shards[si]
	for {
		if len(s.queue) == 0 {
			s.busy = false
			return
		}
		f := s.queue[0]
		s.queue = s.queue[1:]
		st := n.stream(f)
		run := collectRun(st)
		if len(run) == 0 {
			// The dispatched work was consumed by a snapshot merge or
			// dropped by an epoch switch while queued.
			st.applying = false
			n.notifyStreamWaiters(st)
			continue
		}
		busy := 0
		for i := range as.shards {
			if as.shards[i].busy {
				busy++
			}
		}
		n.cl.stats.ApplyParallelism.Observe(simtime.Duration(busy))
		if n.tr.Enabled() {
			n.tr.Emit(trace.Event{Kind: trace.KShardApply, Txn: run[0].Txn,
				Frag: f, Pos: run[0].Pos, Seq: uint64(si), Arg: int64(len(run))})
		}
		w := &quasiWaiter{q: run[0], f: f, st: st, ordered: true,
			run: run, shardIdx: si, slotHeld: true,
			remaining: make(map[fragments.ObjectID]bool)}
		n.acquireRun(w)
		if w.scheduled {
			return // a wound-release granted the rest mid-acquisition
		}
		if len(w.remaining) == 0 {
			n.scheduleInstall(as, w)
			return
		}
		w.slotHeld = false
	}
}

// collectRun pulls the longest contiguous pending run starting at the
// stream's next position. The quasis stay in st.pending until actually
// installed, so snapshot capture keeps shipping them while in flight.
func collectRun(st *streamState) []txn.Quasi {
	var run []txn.Quasi
	next := st.last.Next()
	for {
		q, ok := st.pending[next]
		if !ok {
			return run
		}
		run = append(run, q)
		next = next.Next()
	}
}

// runWriteObjects returns the union of the run's write sets in sorted
// order — one combined lock acquisition per fragment per run.
func runWriteObjects(run []txn.Quasi) []fragments.ObjectID {
	seen := make(map[fragments.ObjectID]bool)
	var out []fragments.ObjectID
	for _, q := range run {
		for _, wo := range q.Writes {
			if !seen[wo.Object] {
				seen[wo.Object] = true
				out = append(out, wo.Object)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// acquireRun takes exclusive locks on the run's combined write set
// under the run's group owner (the first quasi's transaction id),
// wounding local holders on deadlock exactly like the serial path.
// Objects still queued afterwards land in w.remaining; onGrants
// schedules the installation when the last one arrives.
func (n *Node) acquireRun(w *quasiWaiter) {
	owner := w.q.Txn
	if n.quasiWaiters == nil {
		n.quasiWaiters = make(map[txn.ID]*quasiWaiter)
	}
	n.quasiWaiters[owner] = w
	for _, o := range runWriteObjects(w.run) {
		granted, err := n.locks.Acquire(owner, o, lock.Exclusive)
		if err != nil {
			n.woundHolders(o, owner)
			granted, err = n.locks.Acquire(owner, o, lock.Exclusive)
			if err != nil {
				granted = false
			}
		}
		if !granted {
			w.remaining[o] = true
		}
	}
}

// scheduleInstall installs a fully granted run after the apply
// latency. Idempotent per waiter: a wound-release inside acquireRun
// can complete the grant set before the acquisition loop finishes, in
// which case both onGrants and shardStep reach here.
func (n *Node) scheduleInstall(as *applyState, w *quasiWaiter) {
	if w.scheduled {
		return
	}
	w.scheduled = true
	n.cl.sched.After(n.cl.cfg.ApplyLatency, func() {
		if n.apply != as {
			return
		}
		n.installRun(as, w)
	})
}

// installRun installs the run's quasi-transactions in stream order,
// revalidating each against the live stream state: a snapshot merge or
// epoch switch that advanced the stream while the run was in flight
// simply makes the stale entries no-ops. Then it releases the group
// owner's locks, unlatches the stream, and keeps the shard moving.
func (n *Node) installRun(as *applyState, w *quasiWaiter) {
	st := w.st
	owner := w.q.Txn
	var installed []txn.Quasi
	for _, q := range w.run {
		if q.Pos != st.last.Next() {
			continue
		}
		if _, ok := st.pending[q.Pos]; !ok {
			continue
		}
		delete(st.pending, q.Pos)
		n.ensureCataloged(w.f, q.Writes)
		n.store.ApplyQuasi(q)
		st.last = q.Pos
		st.appliedLog = append(st.appliedLog, q)
		n.cl.stats.QuasiApplied.Add(1)
		lag := n.cl.sched.Now().Sub(q.Stamp)
		n.cl.stats.QuasiLag.Observe(lag)
		n.cl.reg.IncApply(w.f, q.Home)
		n.cl.reg.ObserveQuasiLag(w.f, q.Home, lag)
		if n.tr.Enabled() {
			n.tr.Emit(trace.Event{Kind: trace.KQuasiApply, Txn: q.Txn,
				Frag: w.f, Pos: q.Pos, Peer: q.Home, HasPeer: true, Dur: lag})
		}
		installed = append(installed, q)
	}
	delete(n.quasiWaiters, owner)
	grants := n.locks.Release(owner)
	st.applying = false
	n.onGrants(grants)
	if n.cl.onQuasiApplied != nil {
		for _, q := range installed {
			n.cl.onQuasiApplied(n.id, q)
		}
	}
	n.notifyStreamWaiters(st)
	n.dispatchShard(w.f, st)
	if w.slotHeld {
		n.shardStep(as, w.shardIdx)
	}
}

// nodeBurstSink adapts a node to broadcast.BurstSink: during a
// multi-delivery drain (a DataBatch arrival, a repair suffix) shard
// dispatch is deferred so each fragment touched by the batch is
// dispatched — and takes its locks — exactly once.
type nodeBurstSink struct{ n *Node }

func (s nodeBurstSink) BeginBurst() {
	if s.n.batchFrags == nil {
		s.n.batchFrags = make(map[fragments.FragmentID]*streamState)
	}
}

func (s nodeBurstSink) EndBurst() {
	n := s.n
	frags := n.batchFrags
	n.batchFrags = nil
	if len(frags) == 0 {
		return
	}
	// Dispatch in fragment-ID order: deterministic, and consistent with
	// the shard-ordering protocol's ascending discipline.
	ids := make([]fragments.FragmentID, 0, len(frags))
	for f := range frags {
		ids = append(ids, f)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, f := range ids {
		n.dispatchShard(f, frags[f])
	}
}

// txnSpansShards reports whether a transaction's access set — its
// update fragment plus every fragment it read — touches more than one
// apply shard (the transactions the fragment-ID shard-ordering
// protocol exists for).
func (n *Node) txnSpansShards(t *activeTxn) bool {
	first := -1
	spans := func(f fragments.FragmentID) bool {
		si := n.cl.ShardOfFragment(f)
		if first == -1 {
			first = si
			return false
		}
		return si != first
	}
	if t.spec.Fragment != "" && spans(t.spec.Fragment) {
		return true
	}
	for _, r := range t.reads {
		if f, ok := n.cl.cat.FragmentOf(r.Object); ok && spans(f) {
			return true
		}
	}
	return false
}
