package fragments

import (
	"fmt"
	"sort"

	"fragdb/internal/netsim"
)

// Tokens tracks, for every fragment, the agent currently owning its
// token, and for every agent, its home node. Per Section 3.1, tokens
// "have existence outside of the computer system and can be passed by
// means other than electronic messages": the registry is therefore
// global ground truth, distinct from what any node believes. The agent-
// movement protocols in package agentmove consult and mutate it.
type Tokens struct {
	agent map[FragmentID]AgentID
	home  map[AgentID]netsim.NodeID
}

// NewTokens returns an empty token registry.
func NewTokens() *Tokens {
	return &Tokens{
		agent: make(map[FragmentID]AgentID),
		home:  make(map[AgentID]netsim.NodeID),
	}
}

// Assign gives the token of fragment f to agent a, whose home node is
// home. There is exactly one token per fragment, so any previous owner
// loses it.
func (t *Tokens) Assign(f FragmentID, a AgentID, home netsim.NodeID) {
	t.agent[f] = a
	t.home[a] = home
}

// Agent returns the agent currently holding fragment f's token.
func (t *Tokens) Agent(f FragmentID) (AgentID, bool) {
	a, ok := t.agent[f]
	return a, ok
}

// Home returns the home node of agent a: the node where a last issued
// an update transaction (for user agents) or a itself (for node agents).
func (t *Tokens) Home(a AgentID) (netsim.NodeID, bool) {
	n, ok := t.home[a]
	return n, ok
}

// HomeOfFragment returns the home node of the agent of fragment f.
func (t *Tokens) HomeOfFragment(f FragmentID) (netsim.NodeID, bool) {
	a, ok := t.agent[f]
	if !ok {
		return 0, false
	}
	return t.Home(a)
}

// MoveAgent relocates agent a to a new home node. This is the raw
// movement primitive; the protocols of Section 4.4 wrap it with the
// preparatory or corrective actions that keep the database consistent.
func (t *Tokens) MoveAgent(a AgentID, to netsim.NodeID) error {
	if _, ok := t.home[a]; !ok {
		return fmt.Errorf("fragments: unknown agent %q", a)
	}
	t.home[a] = to
	return nil
}

// FragmentsOf returns the fragments whose tokens agent a currently
// holds, in sorted order. An agent may control several fragments (the
// bank's central office controls BALANCES and every RECORDED(i)).
func (t *Tokens) FragmentsOf(a AgentID) []FragmentID {
	var out []FragmentID
	for f, owner := range t.agent {
		if owner == a {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Agents returns all registered agents in sorted order.
func (t *Tokens) Agents() []AgentID {
	out := make([]AgentID, 0, len(t.home))
	for a := range t.home {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks that every fragment in the catalog has exactly one
// token owner with a known home node.
func (t *Tokens) Validate(c *Catalog) error {
	for _, f := range c.Fragments() {
		a, ok := t.agent[f]
		if !ok {
			return fmt.Errorf("fragments: fragment %q has no token owner", f)
		}
		if _, ok := t.home[a]; !ok {
			return fmt.Errorf("fragments: agent %q of fragment %q has no home node", a, f)
		}
	}
	return nil
}

// Clone returns a deep copy of the registry (used by experiments that
// explore alternative assignments).
func (t *Tokens) Clone() *Tokens {
	out := NewTokens()
	for f, a := range t.agent {
		out.agent[f] = a
	}
	for a, n := range t.home {
		out.home[a] = n
	}
	return out
}
