package fragments

import (
	"fmt"
	"sort"
)

// ReadAccessGraph is the directed graph of Section 4.2: vertices are
// fragments, and there is an edge (Fi, Fj) iff some transaction
// initiated by A(Fi) reads a data object contained in Fj (i != j).
type ReadAccessGraph struct {
	vertices map[FragmentID]struct{}
	edges    map[FragmentID]map[FragmentID]struct{}
}

// NewReadAccessGraph returns a graph over the catalog's fragments (all
// of them become vertices; edges are added as transaction classes are
// declared).
func NewReadAccessGraph(c *Catalog) *ReadAccessGraph {
	g := &ReadAccessGraph{
		vertices: make(map[FragmentID]struct{}),
		edges:    make(map[FragmentID]map[FragmentID]struct{}),
	}
	for _, f := range c.Fragments() {
		g.vertices[f] = struct{}{}
	}
	return g
}

// AddVertex declares a fragment vertex (useful when building graphs
// without a catalog, e.g. in tests).
func (g *ReadAccessGraph) AddVertex(f FragmentID) {
	g.vertices[f] = struct{}{}
}

// AddEdge declares that transactions initiated by A(from) read data in
// to. Self-edges (a transaction reading its own fragment) are ignored,
// matching the i != j condition in the paper's definition.
func (g *ReadAccessGraph) AddEdge(from, to FragmentID) {
	if from == to {
		return
	}
	g.vertices[from] = struct{}{}
	g.vertices[to] = struct{}{}
	m, ok := g.edges[from]
	if !ok {
		m = make(map[FragmentID]struct{})
		g.edges[from] = m
	}
	m[to] = struct{}{}
}

// HasEdge reports whether edge (from, to) is present.
func (g *ReadAccessGraph) HasEdge(from, to FragmentID) bool {
	_, ok := g.edges[from][to]
	return ok
}

// Vertices returns the vertex set in sorted order.
func (g *ReadAccessGraph) Vertices() []FragmentID {
	out := make([]FragmentID, 0, len(g.vertices))
	for v := range g.vertices {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all directed edges, sorted lexicographically.
func (g *ReadAccessGraph) Edges() [][2]FragmentID {
	var out [][2]FragmentID
	for from, tos := range g.edges {
		for to := range tos {
			out = append(out, [2]FragmentID{from, to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ElementarilyAcyclic reports whether the graph is elementarily acyclic
// per the paper's definition: the undirected graph with the same nodes
// and edges is acyclic (i.e., a forest). Note this is strictly stronger
// than directed acyclicity — Figure 4.3.1's graph is acyclic but NOT
// elementarily acyclic.
func (g *ReadAccessGraph) ElementarilyAcyclic() bool {
	// Build the undirected adjacency; a pair of antiparallel directed
	// edges collapses to a single undirected edge... but two distinct
	// directed edges (Fi,Fj) and (Fj,Fi) form an undirected multigraph
	// cycle of length two? The paper's G_u "has the same sets of nodes
	// and edges"; with set semantics the pair collapses, so we collapse
	// too, and detect the antiparallel pair separately as a cycle: if
	// both (a,b) and (b,a) exist, transactions of each agent read the
	// other's fragment, which is exactly the two-fragment cycle the
	// theorem excludes.
	type edge struct{ a, b FragmentID }
	undirected := make(map[edge]int)
	for from, tos := range g.edges {
		for to := range tos {
			a, b := from, to
			if b < a {
				a, b = b, a
			}
			undirected[edge{a, b}]++
		}
	}
	for _, cnt := range undirected {
		if cnt > 1 { // antiparallel pair: a 2-cycle in G_u
			return false
		}
	}
	// Union-find cycle detection over the simple undirected edges.
	parent := make(map[FragmentID]FragmentID, len(g.vertices))
	var find func(FragmentID) FragmentID
	find = func(x FragmentID) FragmentID {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	for e := range undirected {
		ra, rb := find(e.a), find(e.b)
		if ra == rb {
			return false
		}
		parent[ra] = rb
	}
	return true
}

// Acyclic reports whether the directed graph has no directed cycle.
// This is the weaker property that does NOT suffice for global
// serializability (Section 4.3 demonstrates a directed-acyclic but
// elementarily cyclic graph producing a non-serializable schedule).
func (g *ReadAccessGraph) Acyclic() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[FragmentID]int, len(g.vertices))
	var visit func(FragmentID) bool
	visit = func(v FragmentID) bool {
		color[v] = gray
		for next := range g.edges[v] {
			switch color[next] {
			case gray:
				return false
			case white:
				if !visit(next) {
					return false
				}
			}
		}
		color[v] = black
		return true
	}
	for v := range g.vertices {
		if color[v] == white && !visit(v) {
			return false
		}
	}
	return true
}

// Validate returns an error describing why the graph fails elementary
// acyclicity, or nil. Used by the control option of Section 4.2 to
// reject workloads whose declared read pattern would forfeit the
// serializability guarantee.
func (g *ReadAccessGraph) Validate() error {
	if g.ElementarilyAcyclic() {
		return nil
	}
	if g.Acyclic() {
		return fmt.Errorf("fragments: read-access graph is acyclic but not elementarily acyclic (undirected cycle exists); global serializability is not guaranteed")
	}
	return fmt.Errorf("fragments: read-access graph has a directed cycle; global serializability is not guaranteed")
}

// Clone returns a deep copy of the graph.
func (g *ReadAccessGraph) Clone() *ReadAccessGraph {
	out := &ReadAccessGraph{
		vertices: make(map[FragmentID]struct{}, len(g.vertices)),
		edges:    make(map[FragmentID]map[FragmentID]struct{}, len(g.edges)),
	}
	for v := range g.vertices {
		out.vertices[v] = struct{}{}
	}
	for from, tos := range g.edges {
		m := make(map[FragmentID]struct{}, len(tos))
		for to := range tos {
			m[to] = struct{}{}
		}
		out.edges[from] = m
	}
	return out
}
