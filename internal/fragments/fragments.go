// Package fragments implements the data-control model of the paper's
// Section 3.1: the database is logically divided into k non-overlapping
// fragments; every fragment has exactly one token; the current owner of
// the token — a user or a node — is the fragment's agent, the only
// party that may initiate update transactions on the fragment.
//
// The package also implements the read-access graph of Section 4.2 and
// its elementary-acyclicity test, the precondition of the paper's
// theorem ("the transaction execution schedule is globally serializable
// if the corresponding read-access graph is elementarily acyclic").
package fragments

import (
	"fmt"
	"sort"
	"sync"

	"fragdb/internal/netsim"
)

// ObjectID names a data object, e.g. "bal:00001".
type ObjectID string

// FragmentID names a fragment, e.g. "BALANCES" or "ACTIVITY(00001)".
type FragmentID string

// AgentID identifies an agent — the owner of a fragment's token. Agents
// model both users (bank customers, warehouse clerks) and nodes (the
// central office computer), per Section 3.1.
type AgentID string

// NodeAgent returns the AgentID conventionally used for the node itself
// acting as an agent.
func NodeAgent(n netsim.NodeID) AgentID {
	return AgentID(fmt.Sprintf("node:%d", int(n)))
}

// Fragment is one of the k non-overlapping subsets of the database.
type Fragment struct {
	ID      FragmentID
	objects map[ObjectID]struct{}
}

// Objects returns the fragment's objects in sorted order.
func (f *Fragment) Objects() []ObjectID {
	out := make([]ObjectID, 0, len(f.objects))
	for o := range f.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains reports whether the object belongs to the fragment.
func (f *Fragment) Contains(o ObjectID) bool {
	_, ok := f.objects[o]
	return ok
}

// Size reports the number of objects in the fragment.
func (f *Fragment) Size() int { return len(f.objects) }

// Catalog maps objects to fragments. Fragments are non-overlapping: an
// object belongs to exactly one fragment. A catalog is shared schema
// metadata: one instance serves every node of a cluster, so it is safe
// for concurrent use.
type Catalog struct {
	mu    sync.RWMutex
	frags map[FragmentID]*Fragment
	owner map[ObjectID]FragmentID
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		frags: make(map[FragmentID]*Fragment),
		owner: make(map[ObjectID]FragmentID),
	}
}

// AddFragment declares a fragment with the given initial objects. It
// returns an error if the fragment already exists or any object is
// already claimed by another fragment (fragments must not overlap).
func (c *Catalog) AddFragment(id FragmentID, objects ...ObjectID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.frags[id]; ok {
		return fmt.Errorf("fragments: fragment %q already declared", id)
	}
	f := &Fragment{ID: id, objects: make(map[ObjectID]struct{}, len(objects))}
	c.frags[id] = f
	for _, o := range objects {
		if err := c.addObjectLocked(id, o); err != nil {
			return err
		}
	}
	return nil
}

// AddObject adds an object to an existing fragment.
func (c *Catalog) AddObject(frag FragmentID, o ObjectID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addObjectLocked(frag, o)
}

func (c *Catalog) addObjectLocked(frag FragmentID, o ObjectID) error {
	f, ok := c.frags[frag]
	if !ok {
		return fmt.Errorf("fragments: unknown fragment %q", frag)
	}
	if prev, claimed := c.owner[o]; claimed {
		return fmt.Errorf("fragments: object %q already in fragment %q", o, prev)
	}
	f.objects[o] = struct{}{}
	c.owner[o] = frag
	return nil
}

// EnsureObject registers o in frag if it is not yet cataloged,
// supporting dynamic creation of data items (the paper's Section 4.4.2A
// mentions transactions "creating new data items"). It returns an error
// only if o already belongs to a different fragment.
func (c *Catalog) EnsureObject(frag FragmentID, o ObjectID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if owner, ok := c.owner[o]; ok {
		if owner != frag {
			return fmt.Errorf("fragments: object %q is in fragment %q, not %q", o, owner, frag)
		}
		return nil
	}
	return c.addObjectLocked(frag, o)
}

// FragmentOf returns the fragment containing object o.
func (c *Catalog) FragmentOf(o ObjectID) (FragmentID, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.owner[o]
	return f, ok
}

// Fragment returns the fragment with the given id.
func (c *Catalog) Fragment(id FragmentID) (*Fragment, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.frags[id]
	return f, ok
}

// Fragments returns all fragment ids in sorted order.
func (c *Catalog) Fragments() []FragmentID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]FragmentID, 0, len(c.frags))
	for id := range c.frags {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumObjects reports the total number of objects across all fragments.
func (c *Catalog) NumObjects() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.owner)
}

// CheckInitiation enforces the paper's initiation requirement: "an
// update transaction T can be initiated by an agent A(F) if and only if
// all data objects modified by T are contained in the fragment F". It
// returns nil if every written object is in frag.
func (c *Catalog) CheckInitiation(frag FragmentID, writes []ObjectID) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, o := range writes {
		owner, ok := c.owner[o]
		if !ok {
			return fmt.Errorf("fragments: write to unknown object %q", o)
		}
		if owner != frag {
			return fmt.Errorf("fragments: initiation requirement violated: object %q is in fragment %q, not %q",
				o, owner, frag)
		}
	}
	return nil
}
