package fragments

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func graphFrom(edges [][2]FragmentID) *ReadAccessGraph {
	g := NewReadAccessGraph(NewCatalog())
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestWarehouseGraphElementarilyAcyclic(t *testing.T) {
	// Figure 4.2.1: central fragment C reads W1..Wk (a star).
	g := graphFrom([][2]FragmentID{{"C", "W1"}, {"C", "W2"}, {"C", "W3"}})
	if !g.ElementarilyAcyclic() {
		t.Error("warehouse star graph should be elementarily acyclic")
	}
	if !g.Acyclic() {
		t.Error("warehouse star graph should be acyclic")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFig431AcyclicButNotElementarilyAcyclic(t *testing.T) {
	// Figure 4.3.1: A(F1) reads F2 and F3; A(F2) reads F3.
	g := graphFrom([][2]FragmentID{{"F1", "F2"}, {"F1", "F3"}, {"F2", "F3"}})
	if !g.Acyclic() {
		t.Error("Fig 4.3.1 graph should be (directed) acyclic")
	}
	if g.ElementarilyAcyclic() {
		t.Error("Fig 4.3.1 graph must NOT be elementarily acyclic (undirected triangle)")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted an elementarily cyclic graph")
	}
}

func TestAirlineGraphElementarilyAcyclic(t *testing.T) {
	// Figure 4.3.3: flight agents read customer fragments.
	g := graphFrom([][2]FragmentID{
		{"Fl1", "C1"}, {"Fl1", "C2"}, {"Fl2", "C1"}, {"Fl2", "C2"},
	})
	// C1-Fl1-C2-Fl2-C1 is an undirected 4-cycle.
	if g.ElementarilyAcyclic() {
		t.Error("airline graph with both flights reading both customers is elementarily cyclic")
	}
	// Dropping one edge breaks the cycle.
	g2 := graphFrom([][2]FragmentID{{"Fl1", "C1"}, {"Fl1", "C2"}, {"Fl2", "C2"}})
	if !g2.ElementarilyAcyclic() {
		t.Error("airline graph minus one edge should be elementarily acyclic")
	}
}

func TestAntiparallelEdgesAreElementaryCycle(t *testing.T) {
	g := graphFrom([][2]FragmentID{{"A", "B"}, {"B", "A"}})
	if g.ElementarilyAcyclic() {
		t.Error("antiparallel pair should count as an elementary cycle")
	}
	if g.Acyclic() {
		t.Error("antiparallel pair is a directed 2-cycle")
	}
}

func TestDirectedCycleDetected(t *testing.T) {
	g := graphFrom([][2]FragmentID{{"A", "B"}, {"B", "C"}, {"C", "A"}})
	if g.Acyclic() {
		t.Error("directed 3-cycle not detected")
	}
	if g.ElementarilyAcyclic() {
		t.Error("3-cycle is also elementarily cyclic")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a cyclic graph")
	}
}

func TestSelfEdgesIgnored(t *testing.T) {
	g := graphFrom([][2]FragmentID{{"A", "A"}})
	if len(g.Edges()) != 0 {
		t.Error("self edge was stored")
	}
	if !g.ElementarilyAcyclic() {
		t.Error("graph with only a self edge should be elementarily acyclic")
	}
}

func TestEmptyAndSingleVertexGraphs(t *testing.T) {
	g := NewReadAccessGraph(NewCatalog())
	if !g.ElementarilyAcyclic() || !g.Acyclic() {
		t.Error("empty graph misclassified")
	}
	g.AddVertex("F")
	if !g.ElementarilyAcyclic() {
		t.Error("single vertex misclassified")
	}
}

func TestEdgesSortedAndHasEdge(t *testing.T) {
	g := graphFrom([][2]FragmentID{{"B", "C"}, {"A", "Z"}, {"A", "B"}})
	es := g.Edges()
	want := [][2]FragmentID{{"A", "B"}, {"A", "Z"}, {"B", "C"}}
	if len(es) != len(want) {
		t.Fatalf("Edges = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", es, want)
		}
	}
	if !g.HasEdge("A", "B") || g.HasEdge("B", "A") {
		t.Error("HasEdge wrong")
	}
}

func TestVerticesIncludeCatalogFragments(t *testing.T) {
	c := NewCatalog()
	c.AddFragment("F1", "a")
	c.AddFragment("F2", "b")
	g := NewReadAccessGraph(c)
	vs := g.Vertices()
	if len(vs) != 2 || vs[0] != "F1" || vs[1] != "F2" {
		t.Errorf("Vertices = %v", vs)
	}
}

func TestClone(t *testing.T) {
	g := graphFrom([][2]FragmentID{{"A", "B"}})
	cl := g.Clone()
	cl.AddEdge("B", "A")
	if !g.ElementarilyAcyclic() {
		t.Error("Clone aliases original edges")
	}
	if cl.ElementarilyAcyclic() {
		t.Error("clone missing new edge")
	}
}

// Property: a forest (tree edges only) is always elementarily acyclic,
// and adding any extra edge between existing vertices breaks it.
func TestPropertyForestElementarilyAcyclic(t *testing.T) {
	f := func(parents []uint8, extraA, extraB uint8) bool {
		n := len(parents)
		if n < 2 || n > 40 {
			return true
		}
		g := NewReadAccessGraph(NewCatalog())
		name := func(i int) FragmentID { return FragmentID(rune('A'+i%26)) + FragmentID(rune('a'+i/26)) }
		// Build a random forest: vertex i>0 points to a parent < i
		// (with some roots skipped).
		for i := 1; i < n; i++ {
			p := int(parents[i]) % i
			if parents[i]%5 == 0 {
				continue // root: no edge
			}
			g.AddEdge(name(i), name(p))
		}
		if !g.ElementarilyAcyclic() {
			return false
		}
		// Adding an edge between two vertices already connected through
		// the forest must create an elementary cycle; between different
		// components it must not. We check consistency of Validate with
		// ElementarilyAcyclic either way.
		a := int(extraA) % n
		b := int(extraB) % n
		if a != b {
			g.AddEdge(name(a), name(b))
		}
		return g.ElementarilyAcyclic() == (g.Validate() == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

// Property: elementary acyclicity implies directed acyclicity.
func TestPropertyElementaryImpliesDirectedAcyclic(t *testing.T) {
	f := func(pairs []uint8) bool {
		g := NewReadAccessGraph(NewCatalog())
		for i := 0; i+1 < len(pairs); i += 2 {
			a := FragmentID(rune('A' + pairs[i]%8))
			b := FragmentID(rune('A' + pairs[i+1]%8))
			g.AddEdge(a, b)
		}
		if g.ElementarilyAcyclic() && !g.Acyclic() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Error(err)
	}
}
