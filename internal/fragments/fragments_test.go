package fragments

import (
	"testing"
)

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog()
	if err := c.AddFragment("BALANCES", "bal:1", "bal:2"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddFragment("ACTIVITY(1)", "act:1"); err != nil {
		t.Fatal(err)
	}
	if f, ok := c.FragmentOf("bal:2"); !ok || f != "BALANCES" {
		t.Errorf("FragmentOf(bal:2) = %v, %v", f, ok)
	}
	if _, ok := c.FragmentOf("nope"); ok {
		t.Error("FragmentOf returned true for unknown object")
	}
	frag, ok := c.Fragment("BALANCES")
	if !ok || frag.Size() != 2 || !frag.Contains("bal:1") || frag.Contains("act:1") {
		t.Errorf("Fragment lookup wrong: %+v", frag)
	}
	objs := frag.Objects()
	if len(objs) != 2 || objs[0] != "bal:1" || objs[1] != "bal:2" {
		t.Errorf("Objects = %v", objs)
	}
	ids := c.Fragments()
	if len(ids) != 2 || ids[0] != "ACTIVITY(1)" || ids[1] != "BALANCES" {
		t.Errorf("Fragments = %v", ids)
	}
	if c.NumObjects() != 3 {
		t.Errorf("NumObjects = %d", c.NumObjects())
	}
}

func TestCatalogRejectsOverlap(t *testing.T) {
	c := NewCatalog()
	if err := c.AddFragment("F1", "x"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddFragment("F2", "x"); err == nil {
		t.Error("overlapping fragments accepted")
	}
	if err := c.AddFragment("F1"); err == nil {
		t.Error("duplicate fragment accepted")
	}
	if err := c.AddObject("F1", "x"); err == nil {
		t.Error("duplicate object accepted")
	}
	if err := c.AddObject("missing", "y"); err == nil {
		t.Error("AddObject to unknown fragment accepted")
	}
}

func TestCheckInitiation(t *testing.T) {
	c := NewCatalog()
	c.AddFragment("F1", "a", "b")
	c.AddFragment("F2", "c")
	if err := c.CheckInitiation("F1", []ObjectID{"a", "b"}); err != nil {
		t.Errorf("valid initiation rejected: %v", err)
	}
	if err := c.CheckInitiation("F1", []ObjectID{"a", "c"}); err == nil {
		t.Error("cross-fragment write accepted")
	}
	if err := c.CheckInitiation("F1", []ObjectID{"zzz"}); err == nil {
		t.Error("write to unknown object accepted")
	}
	if err := c.CheckInitiation("F1", nil); err != nil {
		t.Errorf("empty write set rejected: %v", err)
	}
}

func TestTokens(t *testing.T) {
	tk := NewTokens()
	tk.Assign("BALANCES", "node:0", 0)
	tk.Assign("ACTIVITY(1)", "user:alice", 1)
	tk.Assign("RECORDED(1)", "node:0", 0)

	if a, ok := tk.Agent("BALANCES"); !ok || a != "node:0" {
		t.Errorf("Agent = %v, %v", a, ok)
	}
	if _, ok := tk.Agent("nope"); ok {
		t.Error("Agent of unknown fragment")
	}
	if h, ok := tk.Home("user:alice"); !ok || h != 1 {
		t.Errorf("Home = %v, %v", h, ok)
	}
	if h, ok := tk.HomeOfFragment("ACTIVITY(1)"); !ok || h != 1 {
		t.Errorf("HomeOfFragment = %v, %v", h, ok)
	}
	if _, ok := tk.HomeOfFragment("nope"); ok {
		t.Error("HomeOfFragment of unknown fragment")
	}
	fs := tk.FragmentsOf("node:0")
	if len(fs) != 2 || fs[0] != "BALANCES" || fs[1] != "RECORDED(1)" {
		t.Errorf("FragmentsOf = %v", fs)
	}
	ag := tk.Agents()
	if len(ag) != 2 {
		t.Errorf("Agents = %v", ag)
	}
}

func TestMoveAgent(t *testing.T) {
	tk := NewTokens()
	tk.Assign("F", "user:bob", 0)
	if err := tk.MoveAgent("user:bob", 2); err != nil {
		t.Fatal(err)
	}
	if h, _ := tk.Home("user:bob"); h != 2 {
		t.Errorf("Home after move = %v", h)
	}
	if err := tk.MoveAgent("user:ghost", 1); err == nil {
		t.Error("moving unknown agent accepted")
	}
}

func TestNodeAgent(t *testing.T) {
	if NodeAgent(3) != "node:3" {
		t.Errorf("NodeAgent(3) = %q", NodeAgent(3))
	}
}

func TestTokensValidate(t *testing.T) {
	c := NewCatalog()
	c.AddFragment("F1", "a")
	c.AddFragment("F2", "b")
	tk := NewTokens()
	tk.Assign("F1", "node:0", 0)
	if err := tk.Validate(c); err == nil {
		t.Error("missing token for F2 not detected")
	}
	tk.Assign("F2", "user:x", 1)
	if err := tk.Validate(c); err != nil {
		t.Errorf("valid registry rejected: %v", err)
	}
}

func TestTokensClone(t *testing.T) {
	tk := NewTokens()
	tk.Assign("F", "a", 0)
	cl := tk.Clone()
	cl.Assign("F", "b", 1)
	if a, _ := tk.Agent("F"); a != "a" {
		t.Error("Clone aliases original")
	}
}
