package rtnet

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"fragdb/internal/broadcast"
	"fragdb/internal/netsim"
	"fragdb/internal/wire"
)

// newTCPCluster builds an n-node TCP transport cluster on ephemeral
// loopback ports, returning the transports and their addresses.
func newTCPCluster(t *testing.T, n int) ([]*TCP, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ts := make([]*TCP, n)
	for i := range ts {
		tp, err := NewTCP(TCPConfig{
			Local:          netsim.NodeID(i),
			Addrs:          addrs,
			Listener:       lns[i],
			DialBackoffMin: 5 * time.Millisecond,
			DialBackoffMax: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts[i] = tp
		t.Cleanup(tp.Close)
	}
	return ts, addrs
}

func TestTCPDelivery(t *testing.T) {
	ts, _ := newTCPCluster(t, 2)
	var c collector
	ts[1].SetHandler(1, c.handler)
	// Sends queue until the dial completes; none should be lost with an
	// empty queue.
	ts[0].Send(0, 1, "hello")
	ts[0].Send(0, 1, int64(42))
	ts[1].Send(1, 1, "self") // self-send, no codec
	if !waitFor(t, func() bool { return c.len() == 3 }, 5*time.Second) {
		t.Fatalf("got %d deliveries, want 3", c.len())
	}
}

func TestTCPPeerUnreachableAtDial(t *testing.T) {
	// Node 1's address is a dead port: grab and release an ephemeral
	// listener so nothing answers there.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tp, err := NewTCP(TCPConfig{
		Local:          0,
		Addrs:          []string{ln.Addr().String(), deadAddr},
		Listener:       ln,
		DialBackoffMin: time.Millisecond,
		DialBackoffMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	// Sends must not block or panic while the peer is unreachable.
	for i := 0; i < 10; i++ {
		tp.Send(0, 1, int64(i))
	}
	if !waitFor(t, func() bool { return tp.Stats().DialErrors.Load() >= 2 }, 5*time.Second) {
		t.Fatal("transport is not retrying the unreachable peer")
	}
	if tp.Reachable(0, 1) {
		t.Error("Reachable(0,1) = true with nothing listening")
	}
}

func TestTCPReconnectAfterRestart(t *testing.T) {
	ts, addrs := newTCPCluster(t, 2)
	var c collector
	ts[1].SetHandler(1, c.handler)
	ts[0].Send(0, 1, "before")
	if !waitFor(t, func() bool { return c.len() == 1 }, 5*time.Second) {
		t.Fatal("no delivery before restart")
	}

	// Kill node 1 and restart it on the same address, as a crashed
	// process would. Node 0 must redial and resume delivering.
	ts[1].Close()
	var ts1b *TCP
	ok := waitFor(t, func() bool {
		tp, err := NewTCP(TCPConfig{
			Local:          1,
			Addrs:          addrs,
			DialBackoffMin: 5 * time.Millisecond,
			DialBackoffMax: 50 * time.Millisecond,
		})
		if err != nil {
			return false // port may linger briefly after Close
		}
		ts1b = tp
		return true
	}, 5*time.Second)
	if !ok {
		t.Fatal("could not rebind the restarted node's address")
	}
	defer ts1b.Close()
	var c2 collector
	ts1b.SetHandler(1, c2.handler)

	// The old connection may take a failed write to be noticed; keep
	// sending until one lands.
	ok = waitFor(t, func() bool {
		ts[0].Send(0, 1, "after")
		return c2.len() > 0
	}, 10*time.Second)
	if !ok {
		t.Fatal("no delivery after restart")
	}
}

// dialHello opens a raw client connection with a valid handshake.
func dialHello(t *testing.T, addr string, id uint64) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hello := append([]byte{}, tcpMagic[:]...)
	hello = append(hello, tcpVersion)
	hello = binary.AppendUvarint(hello, id)
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestTCPConnResetMidFrame(t *testing.T) {
	ts, addrs := newTCPCluster(t, 2)
	var c collector
	ts[1].SetHandler(1, c.handler)

	// A hostile client handshakes as node 0, sends half a frame, then
	// resets the connection (SO_LINGER 0 turns Close into RST).
	conn := dialHello(t, addrs[1], 0)
	payload, err := wire.Encode("victim")
	if err != nil {
		t.Fatal(err)
	}
	frame := wire.AppendFrame(nil, payload)
	if _, err := conn.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()

	// Garbage magic on a second connection must be rejected too.
	conn2, err := net.Dial("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	conn2.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	conn2.Close()

	// The transport survives: the real node 0 still gets through.
	ts[0].Send(0, 1, "real")
	if !waitFor(t, func() bool { return c.len() == 1 }, 5*time.Second) {
		t.Fatal("delivery broken after mid-frame reset")
	}
}

func TestTCPOversizedFrameKillsConnNotProcess(t *testing.T) {
	ts, addrs := newTCPCluster(t, 2)
	var c collector
	ts[1].SetHandler(1, c.handler)

	// Declare a 2^40-byte frame: the reader must kill the connection
	// before allocating anything like that.
	conn := dialHello(t, addrs[1], 0)
	defer conn.Close()
	if _, err := conn.Write(binary.AppendUvarint(nil, 1<<40)); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, func() bool { return ts[1].Stats().ConnErrors.Load() >= 1 }, 5*time.Second) {
		t.Fatal("oversized frame not counted as a connection error")
	}
	ts[0].Send(0, 1, "still-works")
	if !waitFor(t, func() bool { return c.len() == 1 }, 5*time.Second) {
		t.Fatal("delivery broken after oversized frame")
	}
}

func TestTCPDropRules(t *testing.T) {
	ts, _ := newTCPCluster(t, 2)
	var c collector
	ts[1].SetHandler(1, c.handler)
	ts[0].Send(0, 1, "a")
	if !waitFor(t, func() bool { return c.len() == 1 }, 5*time.Second) {
		t.Fatal("baseline delivery failed")
	}

	// Outbound drop at the sender.
	ts[0].SetPeerDrop(1, true)
	ts[0].Send(0, 1, "dropped-out")
	// Inbound drop at the receiver.
	ts[0].SetPeerDrop(1, false)
	ts[1].SetPeerDrop(0, true)
	ts[0].Send(0, 1, "dropped-in")
	time.Sleep(100 * time.Millisecond)
	if c.len() != 1 {
		t.Fatalf("partitioned sends delivered: %d", c.len())
	}
	if ts[0].Reachable(0, 1) && ts[1].Reachable(0, 1) {
		t.Error("Reachable ignores drop rules")
	}

	ts[1].SetPeerDrop(0, false)
	ts[0].Send(0, 1, "healed")
	if !waitFor(t, func() bool { return c.len() == 2 }, 5*time.Second) {
		t.Fatal("delivery not restored after drop rules cleared")
	}
}

// TestTCPBroadcastConvergence runs the reliable broadcast over real TCP
// with a drop-rule partition mid-stream: after healing, anti-entropy
// must converge every node, exactly as over netsim and the in-process
// rtnet.Network. Run under -race.
func TestTCPBroadcastConvergence(t *testing.T) {
	const n = 3
	ts, _ := newTCPCluster(t, n)
	bs := make([]*broadcast.Broadcaster, n)
	var mu sync.Mutex
	got := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		bs[i] = broadcast.New(netsim.NodeID(i), ts[i], broadcast.WallTimer{},
			broadcast.Config{GossipInterval: int64(10 * time.Millisecond)},
			func(origin netsim.NodeID, seq uint64, payload any) {
				mu.Lock()
				got[i]++
				mu.Unlock()
			})
		ts[i].SetHandler(netsim.NodeID(i), func(from netsim.NodeID, payload any) {
			bs[i].HandleMessage(from, payload)
		})
	}
	defer func() {
		for _, b := range bs {
			b.Stop()
		}
	}()

	// Partition node 2 away via drop rules on both sides of each link.
	for _, a := range []int{0, 1} {
		ts[a].SetPeerDrop(2, true)
		ts[2].SetPeerDrop(netsim.NodeID(a), true)
	}
	const msgs = 5
	for i := 0; i < msgs; i++ {
		bs[0].Send(int64(i))
	}
	time.Sleep(50 * time.Millisecond)
	if bs[2].Prefix(0) != 0 {
		t.Fatal("partitioned node received messages through drop rules")
	}
	for _, a := range []int{0, 1} {
		ts[a].SetPeerDrop(2, false)
		ts[2].SetPeerDrop(netsim.NodeID(a), false)
	}
	ok := waitFor(t, func() bool {
		for i := 0; i < n; i++ {
			if bs[i].Prefix(0) != msgs {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		for i := 0; i < n; i++ {
			t.Logf("node %d prefix(0) = %d", i, bs[i].Prefix(0))
		}
		t.Fatal("broadcast did not converge over TCP after heal")
	}
}
