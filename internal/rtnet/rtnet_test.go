package rtnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fragdb/internal/broadcast"
	"fragdb/internal/netsim"
)

// collector gathers deliveries thread-safely.
type collector struct {
	mu  sync.Mutex
	got []any
}

func (c *collector) handler(from netsim.NodeID, payload any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, payload)
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func waitFor(t *testing.T, cond func() bool, within time.Duration) bool {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func TestDelivery(t *testing.T) {
	nw := New(2, time.Millisecond)
	defer nw.Close()
	var c collector
	nw.SetHandler(1, c.handler)
	nw.Send(0, 1, "hello")
	if !waitFor(t, func() bool { return c.len() == 1 }, time.Second) {
		t.Fatal("message not delivered")
	}
}

func TestPartitionDrops(t *testing.T) {
	nw := New(3, time.Millisecond)
	defer nw.Close()
	var c collector
	nw.SetHandler(2, c.handler)
	nw.Partition([]netsim.NodeID{0, 1}, []netsim.NodeID{2})
	nw.Send(0, 2, "x")
	time.Sleep(20 * time.Millisecond)
	if c.len() != 0 {
		t.Error("message crossed a partition")
	}
	if nw.Reachable(0, 2) || !nw.Reachable(0, 1) {
		t.Error("Reachable wrong")
	}
	nw.Heal()
	nw.Send(0, 2, "y")
	if !waitFor(t, func() bool { return c.len() == 1 }, time.Second) {
		t.Fatal("message lost after heal")
	}
}

func TestNodeDown(t *testing.T) {
	nw := New(2, time.Millisecond)
	defer nw.Close()
	var c collector
	nw.SetHandler(1, c.handler)
	nw.SetNodeDown(1, true)
	nw.Send(0, 1, "x")
	time.Sleep(20 * time.Millisecond)
	if c.len() != 0 {
		t.Error("delivered to down node")
	}
	nw.SetNodeDown(1, false)
	nw.Send(0, 1, "y")
	if !waitFor(t, func() bool { return c.len() == 1 }, time.Second) {
		t.Fatal("message lost after restart")
	}
}

func TestCloseDropsAndDrains(t *testing.T) {
	nw := New(2, time.Millisecond)
	var c collector
	nw.SetHandler(1, c.handler)
	nw.Send(0, 1, "a")
	nw.Close()
	nw.Send(0, 1, "b") // after close: dropped
	time.Sleep(20 * time.Millisecond)
	if c.len() > 1 {
		t.Error("message accepted after Close")
	}
}

// TestBroadcastOverRealTime runs the reliable broadcast live on
// goroutines: messages sent during a partition must be repaired by
// anti-entropy after the heal, exactly as in the simulation. The
// broadcaster synchronizes internally, so the wall-clock gossip timer
// and the transport's delivery goroutines need no external locking.
func TestBroadcastOverRealTime(t *testing.T) {
	nw := New(3, time.Millisecond)
	defer nw.Close()
	bs := make([]*broadcast.Broadcaster, 3)
	for i := 0; i < 3; i++ {
		i := i
		bs[i] = broadcast.New(netsim.NodeID(i), nw, broadcast.WallTimer{},
			broadcast.Config{GossipInterval: int64(10 * time.Millisecond)},
			func(origin netsim.NodeID, seq uint64, payload any) {})
		nw.SetHandler(netsim.NodeID(i), func(from netsim.NodeID, payload any) {
			bs[i].HandleMessage(from, payload)
		})
	}
	defer func() {
		for _, b := range bs {
			b.Stop()
		}
	}()

	// Partition node 2 away, send, heal, expect repair.
	nw.Partition([]netsim.NodeID{0, 1}, []netsim.NodeID{2})
	bs[0].Send("during")
	time.Sleep(30 * time.Millisecond)
	if bs[2].Prefix(0) != 0 {
		t.Fatal("partitioned node received the message")
	}
	nw.Heal()
	ok := waitFor(t, func() bool { return bs[2].Prefix(0) == 1 }, 5*time.Second)
	if !ok {
		t.Fatal("anti-entropy did not repair over real time")
	}
}

// TestSendCloseRace hammers Send concurrently with Close. The
// regression: Send registered its in-flight delivery with the
// WaitGroup after releasing the lock that observed closed==false, so
// an Add could race Close's Wait (a WaitGroup misuse) and deliveries
// could fire after Close returned. Run under -race.
func TestSendCloseRace(t *testing.T) {
	for iter := 0; iter < 30; iter++ {
		nw := New(2, 100*time.Microsecond)
		var closedAt atomic.Int64
		nw.SetHandler(1, func(from netsim.NodeID, payload any) {
			if closedAt.Load() != 0 {
				t.Error("delivery after Close returned")
			}
		})
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 200; i++ {
					nw.Send(0, 1, i)
				}
			}()
		}
		close(start)
		time.Sleep(time.Duration(iter%4) * 200 * time.Microsecond)
		nw.Close()
		closedAt.Store(1)
		wg.Wait()
	}
}

// TestRealTimeGossipConcurrency runs a live cluster with the built-in
// wall-clock gossip timer while multiple goroutines send and the
// network partitions and heals — the timer goroutine, delivery
// goroutines, and senders all touch broadcaster state concurrently.
// The regression: the broadcaster demanded "external synchronization"
// that no real-time caller provided. Run under -race.
func TestRealTimeGossipConcurrency(t *testing.T) {
	const n = 3
	nw := New(n, 500*time.Microsecond)
	defer nw.Close()
	bs := make([]*broadcast.Broadcaster, n)
	for i := 0; i < n; i++ {
		i := i
		bs[i] = broadcast.New(netsim.NodeID(i), nw, broadcast.WallTimer{},
			broadcast.Config{GossipInterval: int64(2 * time.Millisecond), Compaction: true, CompactRetain: 8},
			func(origin netsim.NodeID, seq uint64, payload any) {})
		nw.SetHandler(netsim.NodeID(i), func(from netsim.NodeID, payload any) {
			bs[i].HandleMessage(from, payload)
		})
	}
	defer func() {
		for _, b := range bs {
			b.Stop()
		}
	}()

	const perSender = 50
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				bs[s].Send(i)
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	// Fault schedule concurrent with the send load.
	time.Sleep(3 * time.Millisecond)
	nw.Partition([]netsim.NodeID{0, 1}, []netsim.NodeID{2})
	time.Sleep(5 * time.Millisecond)
	nw.Heal()
	wg.Wait()

	ok := waitFor(t, func() bool {
		for origin := 0; origin < n; origin++ {
			if bs[origin].Prefix(netsim.NodeID(origin)) != perSender {
				return false
			}
			for node := 0; node < n; node++ {
				if bs[node].Prefix(netsim.NodeID(origin)) != perSender {
					return false
				}
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		for node := 0; node < n; node++ {
			for origin := 0; origin < n; origin++ {
				t.Logf("node %d prefix(origin %d) = %d", node, origin, bs[node].Prefix(netsim.NodeID(origin)))
			}
		}
		t.Fatal("real-time cluster did not converge")
	}
}

// TestCloseCancelsPending pins the stronger Close contract: messages
// whose delivery timers have not fired are cancelled outright, so Close
// returns promptly instead of waiting out the latency, and no handler
// invocation begins after Close returns. The one-hour latency makes the
// test hang (not merely flake) if Close regresses to draining timers.
func TestCloseCancelsPending(t *testing.T) {
	nw := New(2, time.Hour)
	var fired atomic.Int64
	nw.SetHandler(1, func(from netsim.NodeID, payload any) { fired.Add(1) })
	for i := 0; i < 1000; i++ {
		nw.Send(0, 1, i)
	}
	start := time.Now()
	nw.Close()
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("Close took %v with pending hour-latency deliveries", d)
	}
	if n := fired.Load(); n != 0 {
		t.Fatalf("%d handlers fired despite hour latency", n)
	}
	time.Sleep(20 * time.Millisecond)
	if n := fired.Load(); n != 0 {
		t.Fatalf("%d handlers fired after Close returned", n)
	}
}

// TestCloseIdempotent calls Close twice sequentially and many times
// concurrently with a send load; every call must return and the
// no-handler-after-Close guarantee must hold for the first return.
// Run under -race.
func TestCloseIdempotent(t *testing.T) {
	nw := New(2, 50*time.Microsecond)
	var closed atomic.Bool
	nw.SetHandler(1, func(from netsim.NodeID, payload any) {
		if closed.Load() {
			t.Error("handler ran after Close returned")
		}
	})
	var senders sync.WaitGroup
	for g := 0; g < 4; g++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			for i := 0; i < 500; i++ {
				nw.Send(0, 1, i)
			}
		}()
	}
	var closers sync.WaitGroup
	for g := 0; g < 4; g++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			nw.Close()
		}()
	}
	closers.Wait()
	closed.Store(true)
	senders.Wait()
	nw.Close()
}
