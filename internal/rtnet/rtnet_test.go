package rtnet

import (
	"sync"
	"testing"
	"time"

	"fragdb/internal/broadcast"
	"fragdb/internal/netsim"
)

// collector gathers deliveries thread-safely.
type collector struct {
	mu  sync.Mutex
	got []any
}

func (c *collector) handler(from netsim.NodeID, payload any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, payload)
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func waitFor(t *testing.T, cond func() bool, within time.Duration) bool {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func TestDelivery(t *testing.T) {
	nw := New(2, time.Millisecond)
	defer nw.Close()
	var c collector
	nw.SetHandler(1, c.handler)
	nw.Send(0, 1, "hello")
	if !waitFor(t, func() bool { return c.len() == 1 }, time.Second) {
		t.Fatal("message not delivered")
	}
}

func TestPartitionDrops(t *testing.T) {
	nw := New(3, time.Millisecond)
	defer nw.Close()
	var c collector
	nw.SetHandler(2, c.handler)
	nw.Partition([]netsim.NodeID{0, 1}, []netsim.NodeID{2})
	nw.Send(0, 2, "x")
	time.Sleep(20 * time.Millisecond)
	if c.len() != 0 {
		t.Error("message crossed a partition")
	}
	if nw.Reachable(0, 2) || !nw.Reachable(0, 1) {
		t.Error("Reachable wrong")
	}
	nw.Heal()
	nw.Send(0, 2, "y")
	if !waitFor(t, func() bool { return c.len() == 1 }, time.Second) {
		t.Fatal("message lost after heal")
	}
}

func TestNodeDown(t *testing.T) {
	nw := New(2, time.Millisecond)
	defer nw.Close()
	var c collector
	nw.SetHandler(1, c.handler)
	nw.SetNodeDown(1, true)
	nw.Send(0, 1, "x")
	time.Sleep(20 * time.Millisecond)
	if c.len() != 0 {
		t.Error("delivered to down node")
	}
	nw.SetNodeDown(1, false)
	nw.Send(0, 1, "y")
	if !waitFor(t, func() bool { return c.len() == 1 }, time.Second) {
		t.Fatal("message lost after restart")
	}
}

func TestCloseDropsAndDrains(t *testing.T) {
	nw := New(2, time.Millisecond)
	var c collector
	nw.SetHandler(1, c.handler)
	nw.Send(0, 1, "a")
	nw.Close()
	nw.Send(0, 1, "b") // after close: dropped
	time.Sleep(20 * time.Millisecond)
	if c.len() > 1 {
		t.Error("message accepted after Close")
	}
}

// TestBroadcastOverRealTime runs the reliable broadcast live on
// goroutines: messages sent during a partition must be repaired by
// anti-entropy after the heal, exactly as in the simulation. The
// broadcaster is single-owner state, so a per-node mutex serializes
// handler invocations.
func TestBroadcastOverRealTime(t *testing.T) {
	nw := New(3, time.Millisecond)
	defer nw.Close()
	type node struct {
		mu sync.Mutex
		b  *broadcast.Broadcaster
		n  int
	}
	nodes := make([]*node, 3)
	for i := 0; i < 3; i++ {
		i := i
		nd := &node{}
		nodes[i] = nd
		// Gossip is driven manually under each node's mutex (the
		// built-in timer would race with handler invocations in
		// real-time mode).
		nd.b = broadcast.New(netsim.NodeID(i), nw, nil,
			broadcast.Config{},
			func(origin netsim.NodeID, seq uint64, payload any) {
				nd.n++ // already under nd.mu via the transport handler
			})
		nw.SetHandler(netsim.NodeID(i), func(from netsim.NodeID, payload any) {
			nd.mu.Lock()
			defer nd.mu.Unlock()
			nd.b.HandleMessage(from, payload)
		})
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				for _, nd := range nodes {
					nd.mu.Lock()
					nd.b.Gossip()
					nd.mu.Unlock()
				}
			}
		}
	}()

	// Partition node 2 away, send, heal, expect repair.
	nw.Partition([]netsim.NodeID{0, 1}, []netsim.NodeID{2})
	nodes[0].mu.Lock()
	nodes[0].b.Send("during")
	nodes[0].mu.Unlock()
	time.Sleep(30 * time.Millisecond)
	nodes[2].mu.Lock()
	missed := nodes[2].b.Prefix(0) == 0
	nodes[2].mu.Unlock()
	if !missed {
		t.Fatal("partitioned node received the message")
	}
	nw.Heal()
	ok := waitFor(t, func() bool {
		nodes[2].mu.Lock()
		defer nodes[2].mu.Unlock()
		return nodes[2].b.Prefix(0) == 1
	}, 5*time.Second)
	if !ok {
		t.Fatal("anti-entropy did not repair over real time")
	}
}
