// Package rtnet is the real-time counterpart of package netsim: the
// same Transport interface, backed by goroutines and timers instead of
// a virtual-time scheduler. Message delivery happens after a real
// latency on its own goroutine, so upper layers (notably the reliable
// broadcast) can be exercised live, as a concurrent program rather than
// a deterministic simulation.
//
// The deterministic simulator remains the reference environment for
// experiments and tests; rtnet exists to demonstrate that the protocol
// stack is not coupled to virtual time and to support interactive
// demos. Handlers are invoked concurrently and must be thread-safe.
package rtnet

import (
	"sync"
	"time"

	"fragdb/internal/netsim"
)

// Network is a goroutine-based in-process network. It satisfies
// netsim.Transport.
type Network struct {
	n       int
	latency time.Duration

	mu       sync.RWMutex
	handlers []netsim.Handler
	cut      [][]bool
	down     []bool
	closed   bool

	// timers holds the delivery timers of undelivered messages, so
	// Close can cancel them instead of waiting out their latency.
	timers map[*time.Timer]struct{}

	// inflight tracks undelivered messages so Close can drain.
	inflight sync.WaitGroup
}

// New creates a real-time network of n nodes with the given one-way
// delivery latency.
func New(n int, latency time.Duration) *Network {
	if n <= 0 {
		panic("rtnet: network needs at least one node")
	}
	nw := &Network{
		n:        n,
		latency:  latency,
		handlers: make([]netsim.Handler, n),
		down:     make([]bool, n),
		timers:   make(map[*time.Timer]struct{}),
	}
	nw.cut = make([][]bool, n)
	for i := range nw.cut {
		nw.cut[i] = make([]bool, n)
	}
	return nw
}

// N reports the number of nodes.
func (nw *Network) N() int { return nw.n }

// SetHandler installs the delivery callback for a node. Handlers are
// invoked from delivery goroutines and must synchronize internally.
func (nw *Network) SetHandler(node netsim.NodeID, h netsim.Handler) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.handlers[node] = h
}

// Send transmits payload after the configured latency. Messages across
// severed links or to/from down nodes are dropped, as in netsim.
func (nw *Network) Send(from, to netsim.NodeID, payload any) {
	nw.mu.Lock()
	ok := !nw.closed && !nw.down[from] && !nw.down[to] &&
		(from == to || !nw.cut[from][to])
	if !ok {
		nw.mu.Unlock()
		return
	}
	// Register the in-flight delivery while still holding the lock that
	// proved closed==false: the Add then happens-before Close's
	// exclusive Lock, so Close's Wait cannot have started yet
	// (Add-after-Wait is a WaitGroup misuse and raced under -race).
	// Add and AfterFunc never block, so holding the lock here is
	// lockedsend-clean; do not move them after the Unlock.
	nw.inflight.Add(1)
	var tm *time.Timer
	tm = time.AfterFunc(nw.latency, func() {
		defer nw.inflight.Done()
		nw.mu.Lock()
		delete(nw.timers, tm)
		h := nw.handlers[to]
		dropped := nw.closed || nw.down[to]
		nw.mu.Unlock()
		if h == nil || dropped {
			return
		}
		h(from, payload)
	})
	// The callback locks mu before touching nw.timers, so even a
	// zero-latency timer that has already fired on its own goroutine
	// cannot observe the map before this insert.
	nw.timers[tm] = struct{}{}
	nw.mu.Unlock()
}

// SetLink severs (up=false) or restores (up=true) the link a-b.
func (nw *Network) SetLink(a, b netsim.NodeID, up bool) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.cut[a][b] = !up
	nw.cut[b][a] = !up
}

// Partition splits the network into the given groups (unmentioned
// nodes are isolated), as netsim.Network.Partition.
func (nw *Network) Partition(groups ...[]netsim.NodeID) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	group := make([]int, nw.n)
	for i := range group {
		group[i] = -1 - i
	}
	for gi, g := range groups {
		for _, id := range g {
			group[id] = gi
		}
	}
	for a := 0; a < nw.n; a++ {
		for b := a + 1; b < nw.n; b++ {
			same := group[a] == group[b]
			nw.cut[a][b] = !same
			nw.cut[b][a] = !same
		}
	}
}

// Heal restores every link.
func (nw *Network) Heal() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for a := range nw.cut {
		for b := range nw.cut[a] {
			nw.cut[a][b] = false
		}
	}
}

// SetNodeDown crashes or restarts a node.
func (nw *Network) SetNodeDown(node netsim.NodeID, down bool) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.down[node] = down
}

// Reachable reports whether b is currently reachable from a over up
// links.
func (nw *Network) Reachable(a, b netsim.NodeID) bool {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	if nw.down[a] || nw.down[b] {
		return false
	}
	if a == b {
		return true
	}
	seen := make([]bool, nw.n)
	queue := []netsim.NodeID{a}
	seen[a] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for next := 0; next < nw.n; next++ {
			nid := netsim.NodeID(next)
			if seen[next] || nw.down[next] || nw.cut[cur][next] || nid == cur {
				continue
			}
			if nid == b {
				return true
			}
			seen[next] = true
			queue = append(queue, nid)
		}
	}
	return false
}

// Close stops accepting new messages, cancels undelivered ones, and
// waits for deliveries already in their handlers to finish. When Close
// returns, it is guaranteed that no handler invocation begins
// afterwards: undelivered timers were either stopped here (their
// callbacks will never run) or are completing their callbacks, which
// the WaitGroup drains — a delivery goroutine that passed the
// closed-check before Close can therefore still run its handler
// concurrently with Close, but never after it returns. Close is
// idempotent.
func (nw *Network) Close() {
	nw.mu.Lock()
	nw.closed = true
	for tm := range nw.timers {
		if tm.Stop() {
			// Stopped before firing: the callback will never run, so its
			// Done is ours to emit. Timers whose Stop fails are already
			// in (or entering) their callbacks; they observe closed=true
			// under mu and drop, and Wait covers their Done.
			delete(nw.timers, tm)
			nw.inflight.Done()
		}
	}
	// Unlock before Wait: blocking on the WaitGroup while holding mu
	// would deadlock against delivery callbacks taking the lock, and is
	// the exact shape halint's lockedsend analyzer exists to flag.
	nw.mu.Unlock()
	nw.inflight.Wait()
}

// Compile-time check that Network satisfies the transport contract.
var _ netsim.Transport = (*Network)(nil)
