package rtnet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fragdb/internal/metrics"
	"fragdb/internal/simtime"
	"fragdb/internal/trace"
)

func debugFixture() DebugVars {
	c := &metrics.Counters{}
	c.Offered.Add(10)
	c.Committed.Add(8)
	c.Aborted.Add(2)
	c.Deadlocks.Add(1)
	c.CommitLatency.Observe(3 * time.Millisecond)
	c.CommitLatency.Observe(40 * time.Millisecond)
	c.QuasiLag.Observe(7 * time.Millisecond)
	b := &metrics.Broadcast{}
	b.LogEntries.Store(17)
	b.CompactedSeqs.Add(5)
	b.DataSends.Add(3)
	b.PayloadsSent.Add(12)
	b.BatchSize.Observe(1)
	b.BatchSize.Observe(3)
	b.BatchSize.Observe(8)

	var now simtime.Time
	clock := func() simtime.Time { now = now.Add(time.Millisecond); return now }
	tracers := make([]*trace.Recorder, 3)
	for i := range tracers {
		if i == 2 {
			continue // node 2 has tracing disabled
		}
		tracers[i] = trace.NewRecorder(0, 16, clock)
	}
	tracers[1].Emit(trace.Event{Kind: trace.KSubmit, Note: "first"})
	tracers[1].Emit(trace.Event{Kind: trace.KCommit, Note: "second"})

	reg := metrics.NewRegistry()
	reg.IncRead("BALANCES", 1)
	reg.IncRead("BALANCES", 1)
	reg.IncWrite("BALANCES", 0)
	reg.IncCommit("BALANCES", 0)
	reg.ObserveCommitLatency("BALANCES", 0, 5*time.Millisecond)
	reg.IncAbort("BALANCES", 2, "timeout")
	reg.IncLockWait("BALANCES", 1)
	reg.IncRemoteDeny("BALANCES", 2)
	reg.IncApply("CTR(1)", 1)
	reg.ObserveQuasiLag("CTR(1)", 1, 12*time.Millisecond)
	reg.IncForward("CTR(1)", 1)
	reg.IncDelivered(1)
	reg.SetFragInfo("BALANCES", metrics.FragInfo{Option: "read-locks"})
	reg.SetFragInfo("CTR(1)", metrics.FragInfo{Option: "unrestricted", Commutative: true})
	return DebugVars{Counters: c, Broadcast: b, Registry: reg, Tracers: tracers, Runtime: true}
}

func get(t *testing.T, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(NewDebugHandler(debugFixture()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	code, body := get(t, "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"fragdb_txns_offered_total 10",
		"fragdb_txns_committed_total 8",
		"fragdb_txns_deadlocks_total 1",
		"# TYPE fragdb_commit_latency_seconds histogram",
		`fragdb_commit_latency_seconds_bucket{le="+Inf"} 2`,
		"fragdb_commit_latency_seconds_count 2",
		`fragdb_quasi_lag_seconds_bucket{le="+Inf"} 1`,
		"fragdb_broadcast_log_entries 17",
		"fragdb_broadcast_compacted_seqs 5",
		"fragdb_broadcast_data_sends_total 3",
		"fragdb_broadcast_payloads_sent_total 12",
		"fragdb_broadcast_amortization 4",
		"# TYPE fragdb_broadcast_batch_size histogram",
		`fragdb_broadcast_batch_size_bucket{le="+Inf"} 3`,
		"fragdb_broadcast_batch_size_sum 12",
		"fragdb_broadcast_batch_size_count 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
	// Cumulative bucket counts never decrease.
	if !strings.Contains(body, "fragdb_commit_latency_seconds_bucket") {
		t.Fatalf("no latency buckets rendered:\n%s", body)
	}
}

func TestRegistryMetricsEndpoint(t *testing.T) {
	code, body := get(t, "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		`fragdb_frag_reads_total{frag="BALANCES",node="1"} 2`,
		`fragdb_frag_writes_total{frag="BALANCES",node="0"} 1`,
		`fragdb_frag_commits_total{frag="BALANCES",node="0"} 1`,
		`fragdb_frag_aborts_total{frag="BALANCES",node="2",cause="timeout"} 1`,
		`fragdb_frag_lock_waits_total{frag="BALANCES",node="1"} 1`,
		`fragdb_frag_remote_denials_total{frag="BALANCES",node="2"} 1`,
		`fragdb_frag_applies_total{frag="CTR(1)",node="1"} 1`,
		`fragdb_frag_forwards_total{frag="CTR(1)",node="1"} 1`,
		`fragdb_broadcast_stream_delivered_total{frag="",node="1"} 1`,
		`fragdb_frag_commit_latency_seconds_count{frag="BALANCES",node="0"} 1`,
		`fragdb_frag_quasi_lag_seconds_count{frag="CTR(1)",node="1"} 1`,
		`fragdb_frag_info{frag="BALANCES",option="read-locks",commutative="false"} 1`,
		`fragdb_frag_info{frag="CTR(1)",option="unrestricted",commutative="true"} 1`,
		"# TYPE fragdb_go_goroutines gauge",
		"fragdb_go_heap_alloc_bytes",
		"fragdb_go_gc_pause_total_seconds",
		"fragdb_go_gc_cycles_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full body:\n%s", body)
	}
}

func TestTraceEndpoint(t *testing.T) {
	type nodeTrace struct {
		Node   int `json:"node"`
		Events []struct {
			Kind string `json:"kind"`
			Note string `json:"note"`
		} `json:"events"`
	}

	code, body := get(t, "/trace?node=1&n=1")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var got []nodeTrace
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(got) != 1 || got[0].Node != 1 || len(got[0].Events) != 1 {
		t.Fatalf("want node 1 with 1 event, got %+v", got)
	}
	if got[0].Events[0].Kind != "commit" || got[0].Events[0].Note != "second" {
		t.Errorf("tail should be the most recent event, got %+v", got[0].Events[0])
	}

	// Without node=, every recording node appears (node 2 is disabled).
	code, body = get(t, "/trace")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	got = nil
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 recording nodes, got %d: %+v", len(got), got)
	}

	if code, _ := get(t, "/trace?node=9"); code != 400 {
		t.Errorf("out-of-range node: want 400, got %d", code)
	}
	if code, _ := get(t, "/trace?n=-1"); code != 400 {
		t.Errorf("negative n: want 400, got %d", code)
	}
}

// TestMetricsConcurrentScrape scrapes /metrics while writers hammer the
// latency histogram, and checks on every scrape that the histogram
// lines are self-consistent: the le="+Inf" bucket equals the _count
// line and equals the last cumulative bucket. Before histograms were
// rendered from a snapshot, the +Inf bucket (read via Count()) raced
// ahead of or behind the per-bucket reads.
func TestMetricsConcurrentScrape(t *testing.T) {
	c := &metrics.Counters{}
	srv := httptest.NewServer(NewDebugHandler(DebugVars{Counters: c}))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			d := time.Duration(seed + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.CommitLatency.Observe(d * time.Microsecond)
				d = (d*1664525 + 1013904223) % (1 << 18)
			}
		}(w)
	}
	defer func() { close(stop); wg.Wait() }()

	scrape := func() string {
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read body: %v", err)
		}
		return string(body)
	}
	for i := 0; i < 50; i++ {
		body := scrape()
		var lastCum, inf, count uint64
		var haveInf, haveCount bool
		for _, line := range strings.Split(body, "\n") {
			if !strings.HasPrefix(line, "fragdb_commit_latency_seconds") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				continue
			}
			var v uint64
			if _, err := fmt.Sscan(fields[1], &v); err != nil {
				continue // _sum is a float; skip
			}
			switch {
			case strings.Contains(line, `le="+Inf"`):
				inf, haveInf = v, true
			case strings.HasPrefix(line, "fragdb_commit_latency_seconds_bucket"):
				if v < lastCum {
					t.Fatalf("scrape %d: cumulative bucket decreased: %s\n%s", i, line, body)
				}
				lastCum = v
			case strings.HasPrefix(line, "fragdb_commit_latency_seconds_count"):
				count, haveCount = v, true
			}
		}
		if !haveInf || !haveCount {
			t.Fatalf("scrape %d: missing +Inf or _count lines:\n%s", i, body)
		}
		if inf != count || inf != lastCum {
			t.Fatalf("scrape %d: inconsistent histogram: last bucket %d, +Inf %d, count %d",
				i, lastCum, inf, count)
		}
	}
}
