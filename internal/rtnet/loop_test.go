package rtnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fragdb/internal/simtime"
)

func TestLoopFiresScheduledEvents(t *testing.T) {
	sched := simtime.NewScheduler(1)
	l := NewLoop(sched)
	l.Start()
	defer l.Stop()

	fired := make(chan simtime.Time, 3)
	ok := l.Inject(func() {
		// Schedule out of order; they must fire in virtual-time order.
		sched.After(20*time.Millisecond, func() { fired <- sched.Now() })
		sched.After(5*time.Millisecond, func() { fired <- sched.Now() })
		sched.After(10*time.Millisecond, func() { fired <- sched.Now() })
	})
	if !ok {
		t.Fatal("Inject refused on a running loop")
	}
	var times []simtime.Time
	for i := 0; i < 3; i++ {
		select {
		case ts := <-fired:
			times = append(times, ts)
		case <-time.After(5 * time.Second):
			t.Fatalf("timer %d never fired", i)
		}
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("events fired out of order: %v", times)
		}
	}
}

func TestLoopClockTracksWall(t *testing.T) {
	sched := simtime.NewScheduler(1)
	l := NewLoop(sched)
	l.Start()
	defer l.Stop()

	read := func() simtime.Time {
		ch := make(chan simtime.Time, 1)
		l.Inject(func() { ch <- sched.Now() })
		return <-ch
	}
	t0 := read()
	time.Sleep(50 * time.Millisecond)
	t1 := read()
	if d := t1.Sub(t0); d < 40*time.Millisecond {
		t.Fatalf("virtual clock advanced only %v across a 50ms wall sleep", d)
	}
}

func TestLoopStopDropsPendingAndRefusesInject(t *testing.T) {
	sched := simtime.NewScheduler(1)
	l := NewLoop(sched)
	l.Start()

	var fired atomic.Int64
	l.Inject(func() {
		sched.After(time.Hour, func() { fired.Add(1) })
	})
	l.Stop()
	l.Stop() // idempotent
	if l.Inject(func() {}) {
		t.Fatal("Inject accepted after Stop")
	}
	if fired.Load() != 0 {
		t.Fatal("hour-away event fired during Stop")
	}
}

// TestLoopInjectConcurrency hammers Inject from many goroutines while
// the injected closures mutate scheduler-owned state without locks —
// single-threaded execution on the loop goroutine is what makes that
// safe. Run under -race.
func TestLoopInjectConcurrency(t *testing.T) {
	sched := simtime.NewScheduler(1)
	l := NewLoop(sched)
	l.Start()

	counter := 0 // loop-goroutine state: only injected closures touch it
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Inject(func() { counter++ })
			}
		}()
	}
	wg.Wait()
	got := make(chan int, 1)
	l.Inject(func() { got <- counter })
	select {
	case n := <-got:
		if n != goroutines*per {
			t.Fatalf("counter = %d, want %d", n, goroutines*per)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("loop never drained the injected closures")
	}
	l.Stop()
}
