package rtnet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"

	"fragdb/internal/metrics"
	"fragdb/internal/trace"
)

// DebugVars bundles the observability state a live deployment exposes
// over HTTP: the engine counters (with their latency histograms), the
// broadcast gauges, the labeled per-fragment registry, and the per-node
// flight recorders. Any field may be nil; the handler simply omits what
// is absent.
type DebugVars struct {
	Counters  *metrics.Counters
	Broadcast *metrics.Broadcast
	// Registry, when non-nil, adds the labeled per-fragment families
	// (frag_*_total, frag_info, broadcast_stream_delivered_total) to
	// /metrics — the access-pattern matrix cmd/haobs consumes.
	Registry *metrics.Registry
	Tracers  []*trace.Recorder
	// Runtime adds Go runtime gauges (goroutines, heap bytes, GC pause
	// total and cycle count) to /metrics, for correlating engine
	// behavior with process health.
	Runtime bool
}

// NewDebugHandler serves the debug endpoints:
//
//	GET /metrics            Prometheus text exposition: counters,
//	                        broadcast gauges, and the commit-latency and
//	                        quasi-lag histograms (cumulative buckets, in
//	                        seconds).
//	GET /trace?node=N&n=M   JSON tail (last M events, default 100) of
//	                        node N's flight recorder; without node=, the
//	                        tails of every recording node.
//
// Reads are safe concurrently with a live cluster: counters are atomic
// and recorder tails copy under the recorder's own lock.
func NewDebugHandler(v DebugVars) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, v)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		serveTrace(w, r, v.Tracers)
	})
	return mux
}

// writePrometheus renders the metrics in the Prometheus text format.
func writePrometheus(w http.ResponseWriter, v DebugVars) {
	if c := v.Counters; c != nil {
		counter := func(name, help string, val uint64) {
			fmt.Fprintf(w, "# HELP fragdb_%s %s\n# TYPE fragdb_%s counter\nfragdb_%s %d\n",
				name, help, name, name, val)
		}
		counter("txns_offered_total", "Transactions submitted.", c.Offered.Load())
		counter("txns_committed_total", "Transactions committed.", c.Committed.Load())
		counter("txns_aborted_total", "Transactions aborted.", c.Aborted.Load())
		counter("txns_timedout_total", "Aborts caused by timeout.", c.TimedOut.Load())
		counter("txns_deadlocks_total", "Aborts caused by deadlock detection.", c.Deadlocks.Load())
		counter("txns_wounds_total", "Local transactions wounded by quasi-transactions.", c.Wounds.Load())
		counter("txns_rejected_total", "Submissions refused up front.", c.Rejected.Load())
		counter("quasi_applied_total", "Quasi-transactions installed at remote nodes.", c.QuasiApplied.Load())
		counter("quasi_forwarded_total", "Old-epoch quasi-transactions forwarded.", c.QuasiForwarded.Load())
		counter("corrective_actions_total", "Application-level corrective actions.", c.CorrectiveActions.Load())
		writeHistogram(w, "commit_latency_seconds",
			"Submit-to-commit latency of committed transactions.", &c.CommitLatency)
		writeHistogram(w, "quasi_lag_seconds",
			"Propagation lag of installed quasi-transactions.", &c.QuasiLag)
	}
	if b := v.Broadcast; b != nil {
		gauge := func(name, help string, val int64) {
			fmt.Fprintf(w, "# HELP fragdb_%s %s\n# TYPE fragdb_%s gauge\nfragdb_%s %d\n",
				name, help, name, name, val)
		}
		gauge("broadcast_log_entries", "Retained broadcast log entries.", b.LogEntries.Load())
		gauge("broadcast_log_bytes", "Retained broadcast payload bytes.", b.LogBytes.Load())
		gauge("broadcast_compacted_seqs", "Sequence numbers truncated by compaction.", int64(b.CompactedSeqs.Load()))
		gauge("broadcast_snapshots_sent", "Snapshot catch-up offers served.", int64(b.SnapshotsSent.Load()))
		gauge("broadcast_snapshots_installed", "Snapshot catch-up offers accepted.", int64(b.SnapshotsInstalled.Load()))
		gauge("broadcast_pending_dropped", "Out-of-order arrivals dropped.", int64(b.PendingDropped.Load()))
		counter := func(name, help string, val uint64) {
			fmt.Fprintf(w, "# HELP fragdb_%s %s\n# TYPE fragdb_%s counter\nfragdb_%s %d\n",
				name, help, name, name, val)
		}
		counter("broadcast_data_sends_total", "Data messages sent (batched or single).", b.DataSends.Load())
		counter("broadcast_payloads_sent_total", "Payloads carried by data messages.", b.PayloadsSent.Load())
		fmt.Fprintf(w, "# HELP fragdb_broadcast_amortization Payloads per data message (batching win).\n"+
			"# TYPE fragdb_broadcast_amortization gauge\nfragdb_broadcast_amortization %g\n",
			b.Amortization())
		writeCountHistogram(w, "broadcast_batch_size",
			"Payloads per data message, by message.", &b.BatchSize)
	}
	if v.Registry != nil {
		writeRegistry(w, v.Registry)
	}
	if v.Runtime {
		writeRuntime(w)
	}
}

// writeRegistry renders the labeled registry's metric families. Every
// Fam* family declared by the metrics package must be rendered here —
// the declaration below lets halint's metricexported analyzer verify
// that this function references each family-name constant.
//
//halint:metricexporter metrics
func writeRegistry(w http.ResponseWriter, reg *metrics.Registry) {
	counterVec := func(name, help string, samples []metrics.CounterSample) {
		fmt.Fprintf(w, "# HELP fragdb_%s %s\n# TYPE fragdb_%s counter\n", name, help, name)
		for _, s := range samples {
			fmt.Fprintf(w, "fragdb_%s{frag=%q,node=\"%d\"} %d\n", name, string(s.Frag), int(s.Node), s.Value)
		}
	}
	counterVec(metrics.FamFragReads,
		"Declared reads per fragment and originating node.", reg.Reads.Samples())
	counterVec(metrics.FamFragWrites,
		"Declared writes per fragment and originating node.", reg.Writes.Samples())
	counterVec(metrics.FamFragCommits,
		"Committed transactions per fragment and home node.", reg.Commits.Samples())
	counterVec(metrics.FamFragLockWaits,
		"Lock acquisitions that queued, per fragment and requesting node.", reg.LockWaits.Samples())
	counterVec(metrics.FamFragRemoteDenials,
		"Remote read-lock requests denied, per fragment and requester.", reg.RemoteDenials.Samples())
	counterVec(metrics.FamFragApplies,
		"Quasi-transactions installed, per fragment and origin home.", reg.Applies.Samples())
	counterVec(metrics.FamFragForwards,
		"Old-epoch quasi-transactions forwarded, per fragment and origin.", reg.Forwards.Samples())
	counterVec(metrics.FamStreamDelivered,
		"Broadcast payloads delivered, per origin node.", reg.Delivered.Samples())

	fmt.Fprintf(w, "# HELP fragdb_%s Aborted transactions per fragment, node, and cause.\n# TYPE fragdb_%s counter\n",
		metrics.FamFragAborts, metrics.FamFragAborts)
	for _, s := range reg.Aborts.Samples() {
		fmt.Fprintf(w, "fragdb_%s{frag=%q,node=\"%d\",cause=%q} %d\n",
			metrics.FamFragAborts, string(s.Frag), int(s.Node), s.Cause, s.Value)
	}

	histVec := func(name, help string, samples []metrics.HistSample) {
		fmt.Fprintf(w, "# HELP fragdb_%s %s\n# TYPE fragdb_%s histogram\n", name, help, name)
		for _, s := range samples {
			labels := fmt.Sprintf("frag=%q,node=\"%d\"", string(s.Frag), int(s.Node))
			cum := uint64(0)
			for _, b := range s.Snap.Buckets() {
				cum += b.Count
				fmt.Fprintf(w, "fragdb_%s_bucket{%s,le=%q} %d\n",
					name, labels, formatLE(b.Upper.Seconds()), cum)
			}
			fmt.Fprintf(w, "fragdb_%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, s.Snap.Count)
			fmt.Fprintf(w, "fragdb_%s_sum{%s} %g\n", name, labels, s.Snap.Sum.Seconds())
			fmt.Fprintf(w, "fragdb_%s_count{%s} %d\n", name, labels, s.Snap.Count)
		}
	}
	histVec(metrics.FamFragCommitLatency,
		"Submit-to-commit latency per fragment and home node.", reg.CommitLatency.Samples())
	histVec(metrics.FamFragQuasiLag,
		"Propagation lag per fragment and origin home.", reg.QuasiLag.Samples())

	fmt.Fprintf(w, "# HELP fragdb_%s Fragment class metadata (control option, commutativity); value is always 1.\n# TYPE fragdb_%s gauge\n",
		metrics.FamFragInfo, metrics.FamFragInfo)
	for _, s := range reg.FragInfos() {
		fmt.Fprintf(w, "fragdb_%s{frag=%q,option=%q,commutative=\"%t\"} 1\n",
			metrics.FamFragInfo, string(s.Frag), s.Info.Option, s.Info.Commutative)
	}
}

// writeRuntime renders Go runtime health gauges. ReadMemStats is a
// stop-the-world call measured in microseconds — fine at scrape rates.
func writeRuntime(w http.ResponseWriter) {
	gauge := func(name, help string, val float64) {
		fmt.Fprintf(w, "# HELP fragdb_%s %s\n# TYPE fragdb_%s gauge\nfragdb_%s %g\n",
			name, help, name, name, val)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("go_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	gauge("go_heap_alloc_bytes", "Heap bytes allocated and in use.", float64(ms.HeapAlloc))
	gauge("go_gc_pause_total_seconds", "Cumulative stop-the-world GC pause.", float64(ms.PauseTotalNs)/1e9)
	gauge("go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
}

// writeHistogram renders one power-of-two histogram with cumulative
// buckets, durations converted to seconds. It renders from a
// HistSnapshot so the cumulative buckets, the +Inf bucket, and the
// _count line agree even while Observe runs concurrently (reading the
// buckets and the count independently raced: Observe increments count
// before the bucket, so a scrape could see +Inf < the last bucket).
func writeHistogram(w http.ResponseWriter, name, help string, h *metrics.Histogram) {
	s := h.Snapshot()
	fmt.Fprintf(w, "# HELP fragdb_%s %s\n# TYPE fragdb_%s histogram\n", name, help, name)
	cum := uint64(0)
	for _, b := range s.Buckets() {
		cum += b.Count
		fmt.Fprintf(w, "fragdb_%s_bucket{le=%q} %d\n",
			name, formatLE(b.Upper.Seconds()), cum)
	}
	fmt.Fprintf(w, "fragdb_%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "fragdb_%s_sum %g\n", name, s.Sum.Seconds())
	fmt.Fprintf(w, "fragdb_%s_count %d\n", name, s.Count)
}

// writeCountHistogram renders a histogram whose samples are plain
// counts (stored as nanosecond ticks), so bucket bounds are unitless
// integers rather than seconds.
func writeCountHistogram(w http.ResponseWriter, name, help string, h *metrics.Histogram) {
	s := h.Snapshot()
	fmt.Fprintf(w, "# HELP fragdb_%s %s\n# TYPE fragdb_%s histogram\n", name, help, name)
	cum := uint64(0)
	for _, b := range s.Buckets() {
		cum += b.Count
		fmt.Fprintf(w, "fragdb_%s_bucket{le=\"%d\"} %d\n", name, int64(b.Upper), cum)
	}
	fmt.Fprintf(w, "fragdb_%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "fragdb_%s_sum %d\n", name, int64(s.Sum))
	fmt.Fprintf(w, "fragdb_%s_count %d\n", name, s.Count)
}

// formatLE renders a bucket bound without exponent notation surprises.
func formatLE(sec float64) string {
	s := strconv.FormatFloat(sec, 'g', -1, 64)
	return s
}

// serveTrace renders flight-recorder tails as JSON.
func serveTrace(w http.ResponseWriter, r *http.Request, tracers []*trace.Recorder) {
	n := 100
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	type nodeTrace struct {
		Node   int           `json:"node"`
		Events []trace.Event `json:"events"`
	}
	var out []nodeTrace
	if raw := r.URL.Query().Get("node"); raw != "" {
		id, err := strconv.Atoi(strings.TrimPrefix(raw, "N"))
		if err != nil || id < 0 || id >= len(tracers) {
			http.Error(w, "bad node", http.StatusBadRequest)
			return
		}
		out = append(out, nodeTrace{Node: id, Events: tracers[id].Tail(n)})
	} else {
		for i, tr := range tracers {
			if !tr.Enabled() {
				continue
			}
			out = append(out, nodeTrace{Node: i, Events: tr.Tail(n)})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
