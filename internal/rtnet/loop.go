package rtnet

import (
	"sync"
	"time"

	"fragdb/internal/netsim"
	"fragdb/internal/simtime"
)

// Loop drives a simtime.Scheduler at wall-clock pace: virtual time is
// pinned to the wall time elapsed since Start, and every scheduled
// event fires (on the loop goroutine) once the wall clock passes its
// virtual firing time. This is how the deterministic engine stack runs
// in a real deployment without any changes: the engine keeps scheduling
// timeouts and leases on its virtual clock, and the loop makes that
// clock track reality.
//
// The scheduler itself stays single-threaded, exactly as in the
// simulator: only the loop goroutine touches it. External events — a
// TCP frame arriving, an HTTP request submitting a transaction — enter
// through Inject, which enqueues a closure for the loop goroutine to
// run between events. The closure may use the scheduler freely.
type Loop struct {
	sched   *simtime.Scheduler
	inject  chan func()
	stop    chan struct{}
	done    chan struct{}
	started time.Time

	stopOnce sync.Once
}

// injectBuffer bounds how many external events may queue while the loop
// is busy; Inject blocks (applying backpressure) when it is full.
const injectBuffer = 4096

// maxIdleWait bounds how long the loop sleeps when the scheduler has no
// pending events, so a scheduler that gains events only via Inject still
// re-syncs its clock at a human-scale interval.
const maxIdleWait = 250 * time.Millisecond

// NewLoop wraps a scheduler. The scheduler must not be used from any
// other goroutine once Start is called, except through Inject.
func NewLoop(sched *simtime.Scheduler) *Loop {
	return &Loop{
		sched:  sched,
		inject: make(chan func(), injectBuffer),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start begins driving the scheduler on a new goroutine. Virtual time
// zero corresponds to the moment Start is called.
func (l *Loop) Start() {
	l.started = time.Now()
	go l.run()
}

// Inject schedules fn to run on the loop goroutine, with the virtual
// clock advanced to the current wall offset first. It blocks when the
// loop is saturated and reports false (without running fn) once the
// loop is stopped.
func (l *Loop) Inject(fn func()) bool {
	select {
	case <-l.stop:
		return false
	default:
	}
	select {
	case l.inject <- fn:
		return true
	case <-l.stop:
		return false
	}
}

// Stop halts the loop and waits for the loop goroutine to exit. Pending
// injected closures that were not yet executed are dropped. Stop is
// idempotent.
func (l *Loop) Stop() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}

// Elapsed returns the wall time since Start — the loop's target virtual
// time.
func (l *Loop) Elapsed() time.Duration { return time.Since(l.started) }

func (l *Loop) run() {
	defer close(l.done)
	timer := time.NewTimer(maxIdleWait)
	defer timer.Stop()
	for {
		l.advance()
		wait := maxIdleWait
		if next, ok := l.sched.NextEventTime(); ok {
			until := time.Duration(next) - l.Elapsed()
			if until < 0 {
				until = 0
			}
			if until < wait {
				wait = until
			}
		}
		timer.Reset(wait)
		select {
		case <-l.stop:
			return
		case fn := <-l.inject:
			l.advance()
			fn()
			l.drain()
		case <-timer.C:
		}
	}
}

// advance runs every event due at the current wall offset and pins the
// virtual clock to it.
func (l *Loop) advance() {
	l.sched.RunUntil(simtime.Time(l.Elapsed()))
}

// drain runs already-queued injected closures without sleeping, so a
// burst of arrivals is processed in one wakeup.
func (l *Loop) drain() {
	for {
		select {
		case fn := <-l.inject:
			fn()
		default:
			return
		}
	}
}

// ExecTransport wraps a Transport so that every delivered handler runs
// through an executor — typically Loop.Inject, making deliveries
// single-threaded on the engine's scheduler goroutine no matter which
// goroutine the underlying transport delivers on. Sends pass through
// unchanged. Deliveries the executor refuses (stopped loop) are
// dropped, which is within the transport's best-effort contract.
type ExecTransport struct {
	netsim.Transport
	Exec func(func()) bool
}

// SetHandler wraps h so invocations are routed through Exec.
func (e ExecTransport) SetHandler(node netsim.NodeID, h netsim.Handler) {
	exec := e.Exec
	e.Transport.SetHandler(node, func(from netsim.NodeID, payload any) {
		exec(func() { h(from, payload) })
	})
}
