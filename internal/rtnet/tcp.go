package rtnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fragdb/internal/netsim"
	"fragdb/internal/wire"
)

// tcpMagic opens every connection, followed by a protocol version byte
// and the dialing node's id as a uvarint. A listener that reads anything
// else drops the connection: the handshake is the only gate between the
// decode path and arbitrary internet garbage, so everything after it is
// still treated as untrusted (length-capped frames, bounds-checked
// decode) — the magic merely filters out misdirected clients early.
var tcpMagic = [4]byte{'f', 'r', 'a', 'g'}

const tcpVersion = 1

// TCPConfig configures a TCP transport for one node of a cluster.
type TCPConfig struct {
	// Local is this process's node id; Addrs[Local] is its listen
	// address and the remaining entries are its peers.
	Local netsim.NodeID
	Addrs []string

	// Listener, when non-nil, is used instead of listening on
	// Addrs[Local] — tests use it to bind ephemeral ports first and
	// exchange the resulting addresses.
	Listener net.Listener

	// MaxFrame caps the declared length of inbound frames (default
	// wire.MaxFrameDefault). Larger declarations kill the connection
	// before any allocation.
	MaxFrame int

	// WriteQueue bounds the per-peer outbound queue (default 1024).
	// When a peer is down or slow the queue fills and further sends to
	// it are dropped — the best-effort semantics of netsim.
	WriteQueue int

	// DialBackoffMin/Max bound the reconnect backoff (defaults 50ms and
	// 2s).
	DialBackoffMin, DialBackoffMax time.Duration
}

// TCPStats counts transport-level events; all fields are atomic.
type TCPStats struct {
	FramesSent, BytesSent     atomic.Uint64
	FramesRecv, BytesRecv     atomic.Uint64
	SendDropped               atomic.Uint64 // queue full, drop rule, or closed
	RecvDropped               atomic.Uint64 // drop rule or decode error
	Dials, DialErrors         atomic.Uint64
	ConnsAccepted, ConnErrors atomic.Uint64
}

// TCP is a real network transport: each node is a separate process,
// messages are wire-encoded, length-prefix framed, and carried over
// per-peer TCP connections. It satisfies netsim.Transport, so the
// engine stack runs over it unchanged; from / to are cluster node ids
// and only the local node may send or receive in this process.
//
// Outbound connections are owned by per-peer goroutines that dial with
// exponential backoff, drain a bounded write queue, and redial on any
// error. Inbound connections are handshake-verified and their frames
// decoded and delivered in arrival order through a single delivery
// goroutine (or the configured Executor).
type TCP struct {
	cfg   TCPConfig
	local netsim.NodeID
	n     int
	ln    net.Listener

	mu      sync.Mutex
	handler netsim.Handler
	drop    []bool // per-peer drop rule: partitions without killing conns
	closed  bool

	peers   []*tcpPeer
	deliver chan tcpInbound
	stop    chan struct{}
	wg      sync.WaitGroup

	stats TCPStats
}

type tcpInbound struct {
	from    netsim.NodeID
	payload any
}

// tcpPeer owns the outbound connection to one remote node.
type tcpPeer struct {
	id   netsim.NodeID
	addr string
	q    chan []byte

	connected atomic.Bool

	mu   sync.Mutex
	conn net.Conn // current outbound conn, for Close to interrupt writes
}

// NewTCP starts the transport: it listens for inbound connections and
// begins dialing every peer. Peers may come up in any order; sends to
// not-yet-connected peers queue until the dial succeeds or the queue
// fills.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	n := len(cfg.Addrs)
	if n == 0 {
		return nil, errors.New("rtnet: TCP needs at least one address")
	}
	if int(cfg.Local) < 0 || int(cfg.Local) >= n {
		return nil, fmt.Errorf("rtnet: local node %d outside cluster of %d", cfg.Local, n)
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.MaxFrameDefault
	}
	if cfg.WriteQueue <= 0 {
		cfg.WriteQueue = 1024
	}
	if cfg.DialBackoffMin <= 0 {
		cfg.DialBackoffMin = 50 * time.Millisecond
	}
	if cfg.DialBackoffMax <= 0 {
		cfg.DialBackoffMax = 2 * time.Second
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Local])
		if err != nil {
			return nil, fmt.Errorf("rtnet: listen %s: %w", cfg.Addrs[cfg.Local], err)
		}
	}
	t := &TCP{
		cfg:     cfg,
		local:   cfg.Local,
		n:       n,
		ln:      ln,
		drop:    make([]bool, n),
		peers:   make([]*tcpPeer, n),
		deliver: make(chan tcpInbound, cfg.WriteQueue),
		stop:    make(chan struct{}),
	}
	for id := 0; id < n; id++ {
		if netsim.NodeID(id) == t.local {
			continue
		}
		p := &tcpPeer{
			id:   netsim.NodeID(id),
			addr: cfg.Addrs[id],
			q:    make(chan []byte, cfg.WriteQueue),
		}
		t.peers[id] = p
		t.wg.Add(1)
		go t.runPeer(p)
	}
	t.wg.Add(2)
	go t.acceptLoop()
	go t.deliverLoop()
	return t, nil
}

// Addr returns the transport's bound listen address (useful with
// ephemeral ports).
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// N reports the cluster size.
func (t *TCP) N() int { return t.n }

// Stats exposes the transport counters.
func (t *TCP) Stats() *TCPStats { return &t.stats }

// SetHandler installs the delivery callback. Only the local node has a
// handler in this process; installing one for a remote id panics, as it
// would silently never fire.
func (t *TCP) SetHandler(node netsim.NodeID, h netsim.Handler) {
	if node != t.local {
		panic(fmt.Sprintf("rtnet: SetHandler(%d) on TCP transport of node %d", node, t.local))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// SetPeerDrop installs (or clears) a drop rule: while set, frames to
// and from the peer are discarded even though connections stay up. This
// is the partition lever for availability experiments — symmetric
// enough for the paper's scenarios because each side filters inbound
// frames by the same rule.
func (t *TCP) SetPeerDrop(peer netsim.NodeID, drop bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(peer) >= 0 && int(peer) < t.n {
		t.drop[peer] = drop
	}
}

// Send wire-encodes payload and queues it to the peer. From must be the
// local node. Sends to unreachable, dropped, or saturated peers are
// discarded, matching netsim's best-effort contract.
func (t *TCP) Send(from, to netsim.NodeID, payload any) {
	if from != t.local {
		panic(fmt.Sprintf("rtnet: Send from %d on TCP transport of node %d", from, t.local))
	}
	if int(to) < 0 || int(to) >= t.n {
		return
	}
	t.mu.Lock()
	dropped := t.closed || t.drop[to]
	t.mu.Unlock()
	if dropped {
		t.stats.SendDropped.Add(1)
		return
	}
	if to == t.local {
		// Self-sends skip the codec but use the same delivery queue, so
		// ordering relative to remote arrivals is preserved.
		select {
		case t.deliver <- tcpInbound{from: from, payload: payload}:
		case <-t.stop:
		}
		return
	}
	b, err := wire.Encode(payload)
	if err != nil {
		t.stats.SendDropped.Add(1)
		return
	}
	frame := wire.AppendFrame(make([]byte, 0, len(b)+wire.FrameOverhead(len(b))), b)
	select {
	case t.peers[to].q <- frame:
	default:
		t.stats.SendDropped.Add(1)
	}
}

// Reachable reports this process's local view: for links involving the
// local node, whether the outbound connection is up and no drop rule is
// set; for remote-remote links (which this process cannot observe), it
// optimistically reports true unless a drop rule names either end.
func (t *TCP) Reachable(a, b netsim.NodeID) bool {
	if a == b {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.drop[a] || t.drop[b] {
		return false
	}
	other := netsim.NodeID(-1)
	switch {
	case a == t.local:
		other = b
	case b == t.local:
		other = a
	default:
		return true
	}
	p := t.peers[other]
	return p != nil && p.connected.Load()
}

// Close shuts the transport down: the listener and all connections are
// closed and every transport goroutine is joined. After Close returns
// no handler invocation begins (deliveries routed through an Executor
// are the executor's to finish or drop).
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.wg.Wait()
		return
	}
	t.closed = true
	t.mu.Unlock()
	close(t.stop)
	t.ln.Close()
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	}
	t.wg.Wait()
}

// runPeer dials, handshakes, and drains the write queue for one peer,
// redialing with exponential backoff after any error.
func (t *TCP) runPeer(p *tcpPeer) {
	defer t.wg.Done()
	backoff := t.cfg.DialBackoffMin
	for {
		select {
		case <-t.stop:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", p.addr, t.cfg.DialBackoffMax)
		if err != nil {
			t.stats.DialErrors.Add(1)
			select {
			case <-t.stop:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > t.cfg.DialBackoffMax {
				backoff = t.cfg.DialBackoffMax
			}
			continue
		}
		t.stats.Dials.Add(1)
		backoff = t.cfg.DialBackoffMin
		p.mu.Lock()
		p.conn = conn
		p.mu.Unlock()
		p.connected.Store(true)
		t.writeLoop(p, conn)
		p.connected.Store(false)
		conn.Close()
	}
}

// writeLoop sends the handshake and then frames from the queue until an
// error or shutdown. Frames are batched: after one blocking receive it
// drains whatever else is queued before flushing.
func (t *TCP) writeLoop(p *tcpPeer, conn net.Conn) {
	bw := bufio.NewWriter(conn)
	hello := append([]byte{}, tcpMagic[:]...)
	hello = append(hello, tcpVersion)
	hello = binary.AppendUvarint(hello, uint64(t.local))
	if _, err := bw.Write(hello); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	for {
		var frame []byte
		select {
		case <-t.stop:
			return
		case frame = <-p.q:
		}
		for frame != nil {
			if _, err := bw.Write(frame); err != nil {
				t.stats.ConnErrors.Add(1)
				return
			}
			t.stats.FramesSent.Add(1)
			t.stats.BytesSent.Add(uint64(len(frame)))
			select {
			case frame = <-p.q:
			default:
				frame = nil
			}
		}
		if err := bw.Flush(); err != nil {
			t.stats.ConnErrors.Add(1)
			return
		}
	}
}

// acceptLoop admits inbound connections and spawns a reader per
// connection.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.stop:
				return
			default:
			}
			// Transient accept error (e.g. EMFILE): brief pause, retry.
			t.stats.ConnErrors.Add(1)
			select {
			case <-t.stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		t.stats.ConnsAccepted.Add(1)
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop verifies the handshake, then decodes and delivers frames
// until the connection errors or the transport stops. Every input is
// untrusted: the handshake gates the protocol, frame lengths are capped
// before allocation, and decode errors kill the connection (a desynced
// stream cannot be resynchronized).
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	// Interrupt blocking reads at shutdown.
	stopDone := make(chan struct{})
	defer close(stopDone)
	go func() {
		select {
		case <-t.stop:
			conn.Close()
		case <-stopDone:
		}
	}()
	br := bufio.NewReader(conn)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return
	}
	if [4]byte(magic[:4]) != tcpMagic || magic[4] != tcpVersion {
		t.stats.ConnErrors.Add(1)
		return
	}
	id, err := binary.ReadUvarint(br)
	if err != nil || id >= uint64(t.n) || netsim.NodeID(id) == t.local {
		t.stats.ConnErrors.Add(1)
		return
	}
	from := netsim.NodeID(id)
	for {
		frame, err := wire.ReadFrame(br, t.cfg.MaxFrame)
		if err != nil {
			if err != io.EOF {
				t.stats.ConnErrors.Add(1)
			}
			return
		}
		t.stats.FramesRecv.Add(1)
		t.stats.BytesRecv.Add(uint64(len(frame)))
		payload, err := wire.Decode(frame)
		if err != nil {
			t.stats.RecvDropped.Add(1)
			return
		}
		t.mu.Lock()
		dropped := t.closed || t.drop[from]
		t.mu.Unlock()
		if dropped {
			t.stats.RecvDropped.Add(1)
			continue
		}
		select {
		case t.deliver <- tcpInbound{from: from, payload: payload}:
		case <-t.stop:
			return
		}
	}
}

// deliverLoop invokes the handler in arrival order. To run handlers on
// an engine's scheduler goroutine instead, wrap the transport in an
// ExecTransport.
func (t *TCP) deliverLoop() {
	defer t.wg.Done()
	for {
		var in tcpInbound
		select {
		case <-t.stop:
			return
		case in = <-t.deliver:
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h == nil {
			t.stats.RecvDropped.Add(1)
			continue
		}
		h(in.from, in.payload)
	}
}

// Compile-time check that TCP satisfies the transport contract.
var _ netsim.Transport = (*TCP)(nil)
