package workload

import (
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"fragdb/internal/core"
	"fragdb/internal/fragments"
	"fragdb/internal/netsim"
	"fragdb/internal/simtime"
)

// Operation forwarding: counter bumps and queue appends execute at the
// fragment agent's *current* home, wherever adaptive placement has
// moved it. The origin node generates the entry key (globally unique
// across homes: it embeds the origin id and a per-origin sequence, so
// a migration never restarts the key space) and either submits locally
// or ships the operation to the home over the transport. Replies carry
// the responder's view of the home so a stale origin can chase a moved
// agent; transient failures retry with bounded exponential backoff.

// ErrForwardFailed wraps a forwarded operation's remote abort.
var ErrForwardFailed = errors.New("workload: forwarded operation failed")

// ErrForwardTimeout is returned when a forwarded operation exhausted
// its retries without an answer from any home.
var ErrForwardTimeout = errors.New("workload: forwarded operation timed out")

const (
	// fwdMaxRetries bounds re-dispatches after a stale-home rejection,
	// a transient peer outage, or an agent mid-move.
	fwdMaxRetries = 5
	// fwdBaseBackoff is the delay before the first retry; it doubles
	// per attempt (50, 100, 200, 400, 800ms).
	fwdBaseBackoff = 50 * time.Millisecond
)

type (
	// liveOpMsg carries one Live operation to the fragment agent's
	// current home node.
	liveOpMsg struct {
		ID     uint64        // per-origin request id, echoed in the reply
		Origin netsim.NodeID // submitting node: accounting label + reply target
		Kind   string        // "bump" | "enqueue"
		Ctr    int           // counter/queue fragment index
		Entry  fragments.ObjectID
		Amount int64  // bump increment
		Item   string // enqueue payload
	}

	// liveOpReplyMsg reports a forwarded operation's outcome. Home is
	// the responder's current view of the fragment's home node, so an
	// origin holding a stale token map can retry at the right place.
	liveOpReplyMsg struct {
		ID        uint64
		Committed bool
		NotHome   bool // recipient is not (or no longer) the home
		Err       string
		Home      netsim.NodeID
	}
)

func init() {
	gob.Register(liveOpMsg{})
	gob.Register(liveOpReplyMsg{})
}

// pendingFwd tracks one routed operation until it commits, fails, or
// exhausts its retries. Touched only from engine context.
type pendingFwd struct {
	msg     liveOpMsg
	retries int
	backoff simtime.Duration
	start   simtime.Time
	timeout *simtime.Event
	done    func(core.TxnResult)
}

// fragAgent resolves an operation's fragment and agent.
func fragAgent(m liveOpMsg) (fragments.FragmentID, fragments.AgentID) {
	idx := netsim.NodeID(m.Ctr)
	if m.Kind == "enqueue" {
		return queueFragment(idx), queueAgent(idx)
	}
	return counterFragment(idx), counterAgent(idx)
}

// opSpec builds the transaction executing the operation, labeled with
// its true origin so the placement matrix charges the submitting node.
func opSpec(m liveOpMsg) core.TxnSpec {
	f, agent := fragAgent(m)
	spec := core.TxnSpec{
		Agent: agent, Fragment: f, Label: m.Kind,
		Origin: m.Origin, OriginSet: true,
	}
	if m.Kind == "enqueue" {
		spec.Program = func(tx *core.Tx) error { return tx.Write(m.Entry, m.Item) }
	} else {
		spec.Program = func(tx *core.Tx) error { return tx.Write(m.Entry, m.Amount) }
	}
	return spec
}

// BumpAt submits an increment of counter fragment CTR(ctr) originating
// at node origin, routed to the agent's current home.
func (lv *Live) BumpAt(origin, ctr netsim.NodeID, by int64, done func(core.TxnResult)) {
	f := counterFragment(ctr)
	lv.route(liveOpMsg{
		Origin: origin, Kind: "bump", Ctr: int(ctr),
		Entry: lv.next(f, origin), Amount: by,
	}, done)
}

// EnqueueAt appends an item to queue fragment QUEUE(q) originating at
// node origin, routed to the agent's current home.
func (lv *Live) EnqueueAt(origin, q netsim.NodeID, item string, done func(core.TxnResult)) {
	f := queueFragment(q)
	lv.route(liveOpMsg{
		Origin: origin, Kind: "enqueue", Ctr: int(q),
		Entry: lv.next(f, origin), Item: item,
	}, done)
}

// route starts one operation's dispatch loop.
func (lv *Live) route(m liveOpMsg, done func(core.TxnResult)) {
	lv.nextFwd++
	m.ID = lv.nextFwd
	if done == nil {
		done = func(core.TxnResult) {}
	}
	lv.dispatch(&pendingFwd{
		msg: m, retries: fwdMaxRetries, backoff: fwdBaseBackoff,
		start: lv.Cluster().Sched().Now(), done: done,
	})
}

// attemptTimeout bounds one forwarded attempt: the cluster transaction
// timeout plus transport slack.
func (lv *Live) attemptTimeout() simtime.Duration {
	t := lv.Cluster().Config().TxnTimeout
	if t == 0 {
		t = 2 * time.Second
	}
	return t + 500*time.Millisecond
}

// dispatch executes the operation at the fragment's current home:
// locally when the origin is the home, else forwarded.
func (lv *Live) dispatch(p *pendingFwd) {
	cl := lv.Cluster()
	f, _ := fragAgent(p.msg)
	home, ok := cl.Tokens().HomeOfFragment(f)
	if !ok {
		p.done(core.TxnResult{Label: p.msg.Kind,
			Err:   fmt.Errorf("%w: fragment %q has no home", ErrForwardFailed, f),
			Start: p.start, End: cl.Sched().Now()})
		return
	}
	origin := cl.Node(p.msg.Origin)
	if home == p.msg.Origin {
		origin.Submit(opSpec(p.msg), func(r core.TxnResult) {
			if !r.Committed && retryable(r.Err) && p.retries > 0 {
				// The agent moved away (or is mid-move) between the home
				// lookup and execution: chase it.
				lv.retryLater(p)
				return
			}
			p.done(r)
		})
		return
	}
	lv.pending[p.msg.ID] = p
	p.timeout = cl.Sched().After(lv.attemptTimeout(), func() {
		delete(lv.pending, p.msg.ID)
		if p.retries > 0 {
			lv.retryLater(p)
			return
		}
		p.done(core.TxnResult{Label: p.msg.Kind, Err: ErrForwardTimeout,
			Start: p.start, End: cl.Sched().Now()})
	})
	origin.SendApp(home, p.msg)
}

// retryable reports whether a local submission error means "wrong
// home", which a re-resolve + re-dispatch can fix.
func retryable(err error) bool {
	return errors.Is(err, core.ErrNotHome) || errors.Is(err, core.ErrNotAgent) ||
		errors.Is(err, core.ErrAgentMoving)
}

// retryLater re-dispatches after the current backoff, doubling it.
func (lv *Live) retryLater(p *pendingFwd) {
	p.retries--
	d := p.backoff
	p.backoff *= 2
	lv.Cluster().Sched().After(d, func() { lv.dispatch(p) })
}

// installForwarding hooks the app-message path of every locally built
// node (all of them under netsim; just the local one in a SingleNode
// deployment).
func (lv *Live) installForwarding() {
	cl := lv.Cluster()
	for i := 0; i < lv.n; i++ {
		node := cl.Node(netsim.NodeID(i))
		if node == nil {
			continue
		}
		node.SetAppHandler(func(from netsim.NodeID, payload any) {
			switch m := payload.(type) {
			case liveOpMsg:
				lv.serveForwarded(node, m)
			case liveOpReplyMsg:
				lv.handleReply(m)
			}
		})
	}
}

// serveForwarded executes a forwarded operation at this node if it is
// (still) the fragment's home, else bounces it with a home hint.
func (lv *Live) serveForwarded(self *core.Node, m liveOpMsg) {
	f, _ := fragAgent(m)
	home, ok := lv.Cluster().Tokens().HomeOfFragment(f)
	if !ok || home != self.ID() {
		self.SendApp(m.Origin, liveOpReplyMsg{ID: m.ID, NotHome: true, Home: home})
		return
	}
	self.Submit(opSpec(m), func(r core.TxnResult) {
		reply := liveOpReplyMsg{ID: m.ID, Committed: r.Committed, Home: self.ID()}
		if r.Err != nil {
			reply.Err = r.Err.Error()
			reply.NotHome = retryable(r.Err)
		}
		self.SendApp(m.Origin, reply)
	})
}

// handleReply resolves (or retries) the pending operation a reply
// answers. Replies for operations already timed out locally are
// dropped: the retry owns the operation now.
func (lv *Live) handleReply(m liveOpReplyMsg) {
	p, ok := lv.pending[m.ID]
	if !ok {
		return
	}
	delete(lv.pending, m.ID)
	cl := lv.Cluster()
	cl.Sched().Cancel(p.timeout)
	if m.Committed {
		p.done(core.TxnResult{Label: p.msg.Kind, Committed: true,
			Start: p.start, End: cl.Sched().Now()})
		return
	}
	if m.NotHome && p.retries > 0 {
		lv.retryLater(p)
		return
	}
	err := error(ErrForwardFailed)
	if m.Err != "" {
		err = fmt.Errorf("%w: %s", ErrForwardFailed, m.Err)
	}
	p.done(core.TxnResult{Label: p.msg.Kind, Err: err,
		Start: p.start, End: cl.Sched().Now()})
}
