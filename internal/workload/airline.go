package workload

import (
	"fmt"

	"fragdb/internal/core"
	"fragdb/internal/fragments"
	"fragdb/internal/netsim"
)

// Airline is the reservations database of Section 4.3 (Figure 4.3.3):
// one fragment per customer holding reservation *requests* (c_{i,j}),
// one fragment per flight holding granted *assignments* (f_{i,j}) plus
// a seat counter. Customers enter requests at any time, regardless of
// the network's state; each flight's agent periodically scans the
// request fragments and grants seats, refusing grants that would
// overbook. Because requesting is decoupled from granting and granting
// is centralized per flight, the system gets "the best of both worlds:
// availability and correctness."
//
// The seat-assignment fragment's agent can also move — the Section 4.4
// stopover example, where "the plane can be viewed as a token for the
// seat assignment fragment."
type Airline struct {
	cl        *core.Cluster
	flights   []string
	customers []string
	capacity  map[string]int64

	// perNodeSeq keys customer request objects uniquely per node (the
	// request fragments are commutative, like the bank's ACTIVITY).
	perNodeSeq map[string]uint64

	// Refused counts grant refusals that prevented overbooking.
	Refused int
}

// AirlineConfig configures an Airline.
type AirlineConfig struct {
	Cluster core.Config
	// Flights maps flight ids to seat capacity.
	Flights map[string]int64
	// FlightHome maps each flight's agent to its home node (the origin
	// airport's computer).
	FlightHome map[string]netsim.NodeID
	// Customers and their agents' home nodes.
	Customers    []string
	CustomerHome map[string]netsim.NodeID
}

// FlightAgent names the agent of a flight's assignment fragment.
func FlightAgent(flight string) fragments.AgentID {
	return fragments.AgentID("flight:" + flight)
}

// PassengerAgent names the agent of a customer's request fragment.
func PassengerAgent(cust string) fragments.AgentID {
	return fragments.AgentID("pass:" + cust)
}

func custFragment(c string) fragments.FragmentID {
	return fragments.FragmentID("CUST(" + c + ")")
}

// FlightFragment names a flight's assignment fragment.
func FlightFragment(f string) fragments.FragmentID {
	return fragments.FragmentID("FLIGHT(" + f + ")")
}

func seatObj(cust, flight string) fragments.ObjectID {
	return fragments.ObjectID(fmt.Sprintf("seat:%s:%s", cust, flight))
}

func bookedObj(flight string) fragments.ObjectID {
	return fragments.ObjectID("booked:" + flight)
}

// NewAirline builds and starts the reservations cluster.
func NewAirline(cfg AirlineConfig) (*Airline, error) {
	cfg.Cluster.Option = core.UnrestrictedReads
	cl := core.NewCluster(cfg.Cluster)
	a := &Airline{
		cl:         cl,
		capacity:   make(map[string]int64),
		perNodeSeq: make(map[string]uint64),
	}
	for f, cap := range cfg.Flights {
		a.flights = append(a.flights, f)
		a.capacity[f] = cap
		objs := []fragments.ObjectID{bookedObj(f)}
		// Pre-declare the assignment objects f_{i,j} (Figure 4.3.3's
		// flight fragments contain one per customer).
		for _, c := range cfg.Customers {
			objs = append(objs, seatObj(c, f))
		}
		if err := cl.Catalog().AddFragment(FlightFragment(f), objs...); err != nil {
			return nil, err
		}
		cl.Tokens().Assign(FlightFragment(f), FlightAgent(f), cfg.FlightHome[f])
	}
	for _, c := range cfg.Customers {
		a.customers = append(a.customers, c)
		if err := cl.Catalog().AddFragment(custFragment(c)); err != nil {
			return nil, err
		}
		home := cfg.CustomerHome[c]
		cl.Tokens().Assign(custFragment(c), PassengerAgent(c), home)
		cl.SetCommutative(custFragment(c))
	}
	if err := cl.Start(); err != nil {
		return nil, err
	}
	for _, f := range a.flights {
		if err := cl.Load(bookedObj(f), int64(0)); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Cluster exposes the underlying engine.
func (a *Airline) Cluster() *core.Cluster { return a.cl }

// Request enters a reservation request: customer cust wants seats on
// flight at the given node. Requests are accepted unconditionally, at
// any node, under any network condition (that is the availability
// story); granting happens later at the flight's agent.
func (a *Airline) Request(node netsim.NodeID, cust, flight string, seats int64, done func(core.TxnResult)) {
	key := fmt.Sprintf("%d:%s", int(node), cust)
	a.perNodeSeq[key]++
	req := fragments.ObjectID(fmt.Sprintf("req:%s:%s:%d:%d", cust, flight, int(node), a.perNodeSeq[key]))
	a.cl.Node(node).Submit(core.TxnSpec{
		Agent:    PassengerAgent(cust),
		Fragment: custFragment(cust),
		Label:    "request:" + cust + ":" + flight,
		Program: func(tx *core.Tx) error {
			return tx.Write(req, seats)
		},
	}, done)
}

// RequestBoth enters one transaction requesting seats on several
// flights at once (all request objects live in the customer's own
// fragment, so the initiation requirement is satisfied). This is the
// shape of the Figure 4.3.3 customer transactions.
func (a *Airline) RequestBoth(node netsim.NodeID, cust string, seats map[string]int64, done func(core.TxnResult)) {
	key := fmt.Sprintf("%d:%s", int(node), cust)
	reqs := make(map[fragments.ObjectID]int64, len(seats))
	for _, f := range a.flights {
		n, ok := seats[f]
		if !ok {
			continue
		}
		a.perNodeSeq[key]++
		obj := fragments.ObjectID(fmt.Sprintf("req:%s:%s:%d:%d", cust, f, int(node), a.perNodeSeq[key]))
		reqs[obj] = n
	}
	a.cl.Node(node).Submit(core.TxnSpec{
		Agent:    PassengerAgent(cust),
		Fragment: custFragment(cust),
		Label:    "request-multi:" + cust,
		Program: func(tx *core.Tx) error {
			for obj, n := range reqs {
				if err := tx.Write(obj, n); err != nil {
					return err
				}
			}
			return nil
		},
	}, done)
}

// Scan runs flight's periodic granting transaction at the flight
// agent's home node: it reads every customer request fragment, grants
// new requests in customer order, and refuses any grant that would
// exceed capacity (overbooking prevention, centralized).
func (a *Airline) Scan(flight string, done func(core.TxnResult)) {
	home, ok := a.cl.Tokens().HomeOfFragment(FlightFragment(flight))
	if !ok {
		return
	}
	cap := a.capacity[flight]
	a.cl.Node(home).Submit(core.TxnSpec{
		Agent:    FlightAgent(flight),
		Fragment: FlightFragment(flight),
		Label:    "scan:" + flight,
		Program: func(tx *core.Tx) error {
			booked, err := tx.ReadInt(bookedObj(flight))
			if err != nil {
				return err
			}
			for _, cust := range a.customers {
				frag, ok := a.cl.Catalog().Fragment(custFragment(cust))
				if !ok {
					continue
				}
				want := int64(0)
				for _, req := range frag.Objects() {
					// Request objects carry the flight id in their name.
					if !matchesFlight(string(req), cust, flight) {
						continue
					}
					v, err := tx.ReadInt(req)
					if err != nil {
						return err
					}
					want += v
				}
				if want == 0 {
					continue
				}
				granted, err := tx.ReadInt(seatObj(cust, flight))
				if err != nil {
					return err
				}
				if granted >= want {
					continue // nothing new
				}
				delta := want - granted
				if booked+delta > cap {
					a.Refused++ // potential overbooking detected: refuse
					continue
				}
				booked += delta
				if err := tx.Write(seatObj(cust, flight), want); err != nil {
					return err
				}
			}
			return tx.Write(bookedObj(flight), booked)
		},
	}, done)
}

// matchesFlight reports whether request object name is for (cust,
// flight).
func matchesFlight(obj, cust, flight string) bool {
	prefix := "req:" + cust + ":" + flight + ":"
	return len(obj) > len(prefix) && obj[:len(prefix)] == prefix
}

// Booked returns the flight's seat count as replicated at node.
func (a *Airline) Booked(node netsim.NodeID, flight string) int64 {
	v, _ := a.cl.Node(node).Store().Get(bookedObj(flight))
	if v == nil {
		return 0
	}
	return v.(int64)
}

// Seats returns the customer's granted seats on flight as replicated at
// node.
func (a *Airline) Seats(node netsim.NodeID, cust, flight string) int64 {
	v, _ := a.cl.Node(node).Store().Get(seatObj(cust, flight))
	if v == nil {
		return 0
	}
	return v.(int64)
}

// Capacity returns the flight's configured capacity.
func (a *Airline) Capacity(flight string) int64 { return a.capacity[flight] }
