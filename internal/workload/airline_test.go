package workload

import (
	"testing"
	"time"

	"fragdb/internal/agentmove"
	"fragdb/internal/core"
	"fragdb/internal/history"
	"fragdb/internal/netsim"
)

// newAirline builds the Figure 4.3.3 database: two flights, two
// customers, four nodes, every agent at a different node.
func newAirline(t *testing.T, seed int64) *Airline {
	t.Helper()
	a, err := NewAirline(AirlineConfig{
		Cluster: core.Config{N: 4, Seed: seed},
		Flights: map[string]int64{"FL1": 10, "FL2": 10},
		FlightHome: map[string]netsim.NodeID{
			"FL1": 2, "FL2": 3,
		},
		Customers: []string{"c1", "c2"},
		CustomerHome: map[string]netsim.NodeID{
			"c1": 0, "c2": 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRequestAndGrant(t *testing.T) {
	a := newAirline(t, 1)
	cl := a.Cluster()
	defer cl.Shutdown()
	a.Request(0, "c1", "FL1", 2, nil)
	if !cl.Settle(10 * time.Second) {
		t.Fatal("settle")
	}
	a.Scan("FL1", nil)
	if !cl.Settle(10 * time.Second) {
		t.Fatal("settle 2")
	}
	if got := a.Seats(1, "c1", "FL1"); got != 2 {
		t.Errorf("seats = %d, want 2", got)
	}
	if got := a.Booked(0, "FL1"); got != 2 {
		t.Errorf("booked = %d", got)
	}
}

func TestRequestsAcceptedDuringPartition(t *testing.T) {
	a := newAirline(t, 2)
	cl := a.Cluster()
	defer cl.Shutdown()
	// Full fragmentation: every node isolated. Requests still accepted.
	cl.Net().Partition([]netsim.NodeID{0}, []netsim.NodeID{1}, []netsim.NodeID{2}, []netsim.NodeID{3})
	var r1, r2 core.TxnResult
	a.Request(0, "c1", "FL1", 1, func(r core.TxnResult) { r1 = r })
	a.Request(1, "c2", "FL2", 3, func(r core.TxnResult) { r2 = r })
	cl.RunFor(500 * time.Millisecond)
	if !r1.Committed || !r2.Committed {
		t.Fatalf("requests during total partition: %+v %+v", r1, r2)
	}
	cl.Net().Heal()
	if !cl.Settle(20 * time.Second) {
		t.Fatal("settle")
	}
	a.Scan("FL1", nil)
	a.Scan("FL2", nil)
	if !cl.Settle(20 * time.Second) {
		t.Fatal("settle 2")
	}
	if a.Seats(0, "c1", "FL1") != 1 || a.Seats(0, "c2", "FL2") != 3 {
		t.Errorf("seats = %d, %d", a.Seats(0, "c1", "FL1"), a.Seats(0, "c2", "FL2"))
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
}

func TestOverbookingPrevented(t *testing.T) {
	a, err := NewAirline(AirlineConfig{
		Cluster:      core.Config{N: 3, Seed: 3},
		Flights:      map[string]int64{"FL1": 5},
		FlightHome:   map[string]netsim.NodeID{"FL1": 0},
		Customers:    []string{"c1", "c2"},
		CustomerHome: map[string]netsim.NodeID{"c1": 1, "c2": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := a.Cluster()
	defer cl.Shutdown()
	// Both customers request 4 seats of a 5-seat flight — during a
	// partition, so neither request can be checked against the other.
	cl.Net().Partition([]netsim.NodeID{0}, []netsim.NodeID{1}, []netsim.NodeID{2})
	a.Request(1, "c1", "FL1", 4, nil)
	a.Request(2, "c2", "FL1", 4, nil)
	cl.RunFor(500 * time.Millisecond)
	cl.Net().Heal()
	if !cl.Settle(20 * time.Second) {
		t.Fatal("settle")
	}
	a.Scan("FL1", nil)
	if !cl.Settle(20 * time.Second) {
		t.Fatal("settle 2")
	}
	// Exactly one grant fits; the other is refused — no overbooking,
	// because granting is centralized at the flight's agent.
	booked := a.Booked(0, "FL1")
	if booked > a.Capacity("FL1") {
		t.Fatalf("overbooked: %d > %d", booked, a.Capacity("FL1"))
	}
	if booked != 4 {
		t.Errorf("booked = %d, want 4", booked)
	}
	if a.Refused == 0 {
		t.Error("no refusal recorded")
	}
	// The run is fragmentwise serializable even though the read-access
	// graph (two flights reading two customers) is elementarily cyclic.
	if err := cl.Recorder().CheckFragmentwise(); err != nil {
		t.Errorf("fragmentwise: %v", err)
	}
}

// TestFig433NonSerializableButFragmentwise drives the paper's
// both-flights scenario live: each customer requests seats on both
// flights while partitioned so that each flight agent sees only one
// customer's request when scanning. The resulting history is not
// globally serializable but is fragmentwise serializable and overbooks
// nothing.
func TestFig433NonSerializableButFragmentwise(t *testing.T) {
	a := newAirline(t, 4)
	cl := a.Cluster()
	defer cl.Shutdown()
	// Groups: {c1 (node 0), FL1 (node 2)} and {c2 (node 1), FL2 (node 3)}.
	cl.Net().Partition([]netsim.NodeID{0, 2}, []netsim.NodeID{1, 3})
	// Customer 1 requests seats on both flights in one transaction; so
	// does customer 2 (the Figure 4.3.3 transaction shape).
	a.RequestBoth(0, "c1", map[string]int64{"FL1": 1, "FL2": 1}, nil)
	a.RequestBoth(1, "c2", map[string]int64{"FL1": 1, "FL2": 1}, nil)
	cl.RunFor(500 * time.Millisecond)
	// Each flight scans while seeing only its side's requests: FL1 sees
	// c1's, FL2 sees c2's.
	a.Scan("FL1", nil)
	a.Scan("FL2", nil)
	cl.RunFor(500 * time.Millisecond)
	cl.Net().Heal()
	if !cl.Settle(20 * time.Second) {
		t.Fatal("settle")
	}
	// FL1 granted c1 only; FL2 granted c2 only: the cross pattern.
	if a.Seats(0, "c1", "FL1") != 1 || a.Seats(0, "c2", "FL2") != 1 {
		t.Fatalf("grants missing: %d %d", a.Seats(0, "c1", "FL1"), a.Seats(0, "c2", "FL2"))
	}
	if a.Seats(0, "c2", "FL1") != 0 || a.Seats(0, "c1", "FL2") != 0 {
		t.Fatalf("unexpected grants")
	}
	if err := cl.Recorder().CheckGlobal(history.Options{}); err == nil {
		t.Error("schedule unexpectedly globally serializable; Figure 4.3.3's anomaly not reproduced")
	}
	if err := cl.Recorder().CheckFragmentwise(); err != nil {
		t.Errorf("fragmentwise: %v", err)
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
}

// TestStopoverFlightMovesWithPlane is the Section 4.4 example: the
// plane is the token for the seat-assignment fragment; at each stop the
// airport's computer becomes the agent, moving with data (the manifest
// travels on the plane).
func TestStopoverFlightMovesWithPlane(t *testing.T) {
	a := newAirline(t, 5)
	cl := a.Cluster()
	defer cl.Shutdown()
	a.Request(0, "c1", "FL1", 2, nil)
	cl.Settle(10 * time.Second)
	a.Scan("FL1", nil) // granted at origin airport (node 2)
	cl.Settle(10 * time.Second)

	// The plane takes off: its fragment moves to the stopover airport
	// (node 3) carrying the data.
	var mv agentmove.Result
	agentmove.MoveWithData(cl, FlightAgent("FL1"), 3, 200*time.Millisecond,
		func(r agentmove.Result) { mv = r })
	cl.RunFor(time.Second)
	if !mv.Completed {
		t.Fatalf("move = %+v", mv)
	}
	// New passengers board at the stopover.
	a.Request(1, "c2", "FL1", 3, nil)
	cl.Settle(10 * time.Second)
	a.Scan("FL1", nil) // now runs at node 3
	if !cl.Settle(20 * time.Second) {
		t.Fatal("settle")
	}
	if got := a.Booked(0, "FL1"); got != 5 {
		t.Errorf("booked = %d, want 5", got)
	}
	if err := cl.Recorder().CheckFragmentwise(); err != nil {
		t.Errorf("fragmentwise: %v", err)
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
}
