package workload

import (
	"fmt"

	"fragdb/internal/core"
	"fragdb/internal/fragments"
	"fragdb/internal/netsim"
)

// Warehouse is the wholesale-company database of Section 4.2
// (Figure 4.2.1): one fragment W_i per warehouse location recording
// sales, shipments, and quantity on hand; one fragment C controlled by
// the central office recording purchase decisions computed by
// periodically scanning the W_i. The read-access graph is a star
// (C reads every W_i), which is elementarily acyclic — so the cluster
// runs under the AcyclicReads option and the paper's theorem guarantees
// global serializability with no read locks at all: warehouses keep
// entering sales during communication failures, and the central office
// always computes over a consistent view.
type Warehouse struct {
	cl       *core.Cluster
	n        int
	products []string
}

// WarehouseConfig configures a Warehouse.
type WarehouseConfig struct {
	Cluster core.Config
	// Warehouses is the number of warehouse locations; warehouse i's
	// fragment lives at node i+1, the central office at node 0. The
	// cluster therefore needs N >= Warehouses+1 nodes.
	Warehouses int
	// Products stocked at every location.
	Products []string
	// InitialStock per product per location.
	InitialStock int64
}

// WarehouseAgent names warehouse i's agent.
func WarehouseAgent(i int) fragments.AgentID {
	return fragments.AgentID(fmt.Sprintf("wh:%d", i))
}

// WarehouseFragment names warehouse i's fragment.
func WarehouseFragment(i int) fragments.FragmentID {
	return fragments.FragmentID(fmt.Sprintf("W%d", i))
}

// CentralFragment is the purchasing fragment's id.
const CentralFragment = fragments.FragmentID("C")

func stockObj(w int, product string) fragments.ObjectID {
	return fragments.ObjectID(fmt.Sprintf("stock:%d:%s", w, product))
}

func soldObj(w int, product string) fragments.ObjectID {
	return fragments.ObjectID(fmt.Sprintf("sold:%d:%s", w, product))
}

func planObj(product string) fragments.ObjectID {
	return fragments.ObjectID("plan:" + product)
}

// NewWarehouse builds and starts the wholesale cluster under the
// AcyclicReads option, as the Figure 4.2.1 design intends.
func NewWarehouse(cfg WarehouseConfig) (*Warehouse, error) {
	return NewWarehouseWithOption(cfg, core.AcyclicReads)
}

// NewWarehouseWithOption builds the same schema under an explicit
// control option (experiments use ReadLocks for contrast runs).
func NewWarehouseWithOption(cfg WarehouseConfig, opt core.ControlOption) (*Warehouse, error) {
	if cfg.Cluster.N < cfg.Warehouses+1 {
		return nil, fmt.Errorf("workload: need N >= %d nodes", cfg.Warehouses+1)
	}
	cfg.Cluster.Option = opt
	cl := core.NewCluster(cfg.Cluster)
	w := &Warehouse{cl: cl, n: cfg.Warehouses, products: cfg.Products}

	var planObjs []fragments.ObjectID
	for _, p := range cfg.Products {
		planObjs = append(planObjs, planObj(p))
	}
	if err := cl.Catalog().AddFragment(CentralFragment, planObjs...); err != nil {
		return nil, err
	}
	cl.Tokens().Assign(CentralFragment, fragments.NodeAgent(0), 0)
	for i := 1; i <= cfg.Warehouses; i++ {
		var objs []fragments.ObjectID
		for _, p := range cfg.Products {
			objs = append(objs, stockObj(i, p), soldObj(i, p))
		}
		if err := cl.Catalog().AddFragment(WarehouseFragment(i), objs...); err != nil {
			return nil, err
		}
		cl.Tokens().Assign(WarehouseFragment(i), WarehouseAgent(i), netsim.NodeID(i))
		// Figure 4.2.1: the only read-access edges run from C to each W_i.
		cl.DeclareRead(CentralFragment, WarehouseFragment(i))
	}
	if err := cl.Start(); err != nil {
		return nil, err
	}
	for i := 1; i <= cfg.Warehouses; i++ {
		for _, p := range cfg.Products {
			if err := cl.Load(stockObj(i, p), cfg.InitialStock); err != nil {
				return nil, err
			}
			if err := cl.Load(soldObj(i, p), int64(0)); err != nil {
				return nil, err
			}
		}
	}
	return w, nil
}

// Cluster exposes the underlying engine.
func (w *Warehouse) Cluster() *core.Cluster { return w.cl }

// Sell records a sale of qty units of product at warehouse i (the
// warehouse's own node). It decrements stock and increments the sold
// counter; a sale exceeding stock is refused locally.
func (w *Warehouse) Sell(i int, product string, qty int64, done func(core.TxnResult)) {
	w.cl.Node(netsim.NodeID(i)).Submit(core.TxnSpec{
		Agent:    WarehouseAgent(i),
		Fragment: WarehouseFragment(i),
		Label:    fmt.Sprintf("sell:%d:%s", i, product),
		Program: func(tx *core.Tx) error {
			stock, err := tx.ReadInt(stockObj(i, product))
			if err != nil {
				return err
			}
			if stock < qty {
				return fmt.Errorf("workload: warehouse %d out of %s", i, product)
			}
			sold, err := tx.ReadInt(soldObj(i, product))
			if err != nil {
				return err
			}
			if err := tx.Write(stockObj(i, product), stock-qty); err != nil {
				return err
			}
			return tx.Write(soldObj(i, product), sold+qty)
		},
	}, done)
}

// Receive records a merchandise shipment arriving at warehouse i.
func (w *Warehouse) Receive(i int, product string, qty int64, done func(core.TxnResult)) {
	w.cl.Node(netsim.NodeID(i)).Submit(core.TxnSpec{
		Agent:    WarehouseAgent(i),
		Fragment: WarehouseFragment(i),
		Label:    fmt.Sprintf("receive:%d:%s", i, product),
		Program: func(tx *core.Tx) error {
			stock, err := tx.ReadInt(stockObj(i, product))
			if err != nil {
				return err
			}
			return tx.Write(stockObj(i, product), stock+qty)
		},
	}, done)
}

// Plan runs the central office's periodic purchasing transaction: scan
// every warehouse's stock of every product and record how much to buy
// (a simple reorder-up-to policy). Under the AcyclicReads option this
// scan is lock-free yet globally serializable.
func (w *Warehouse) Plan(reorderUpTo int64, done func(core.TxnResult)) {
	w.cl.Node(0).Submit(core.TxnSpec{
		Agent:    fragments.NodeAgent(0),
		Fragment: CentralFragment,
		Label:    "plan",
		Program: func(tx *core.Tx) error {
			for _, p := range w.products {
				total := int64(0)
				for i := 1; i <= w.n; i++ {
					v, err := tx.ReadInt(stockObj(i, p))
					if err != nil {
						return err
					}
					total += v
				}
				buy := int64(0)
				if total < reorderUpTo {
					buy = reorderUpTo - total
				}
				if err := tx.Write(planObj(p), buy); err != nil {
					return err
				}
			}
			return nil
		},
	}, done)
}

// CheckOtherStock runs a READ-ONLY transaction at warehouse i's node
// that reads warehouse j's stock — the Section 4.2 allowance: "one
// warehouse can be allowed to read from the fragment controlled by
// another warehouse with no great harm (this can be useful when the
// current inventory at this warehouse is not sufficient to satisfy a
// customer's request)". Read-only transactions are exempt from the
// read-access restrictions, so this works even though no W_i -> W_j
// edge is declared; the answer may reflect non-serializable staleness,
// which only shows in this output, never in the database.
func (w *Warehouse) CheckOtherStock(i, j int, product string, done func(int64, error)) {
	w.cl.Node(netsim.NodeID(i)).Submit(core.TxnSpec{
		Agent: WarehouseAgent(i), // read-only: any agent may initiate anywhere
		Label: fmt.Sprintf("check:%d->%d:%s", i, j, product),
		Program: func(tx *core.Tx) error {
			v, err := tx.ReadInt(stockObj(j, product))
			if err != nil {
				return err
			}
			if done != nil {
				done(v, nil)
			}
			return nil
		},
	}, func(r core.TxnResult) {
		if !r.Committed && done != nil {
			done(0, r.Err)
		}
	})
}

// Stock returns warehouse i's stock of product as replicated at node.
func (w *Warehouse) Stock(node netsim.NodeID, i int, product string) int64 {
	v, _ := w.cl.Node(node).Store().Get(stockObj(i, product))
	if v == nil {
		return 0
	}
	return v.(int64)
}

// PlanFor returns the central plan for product as replicated at node.
func (w *Warehouse) PlanFor(node netsim.NodeID, product string) int64 {
	v, _ := w.cl.Node(node).Store().Get(planObj(product))
	if v == nil {
		return 0
	}
	return v.(int64)
}
