package workload

import (
	"testing"
	"time"

	"fragdb/internal/core"
	"fragdb/internal/history"
	"fragdb/internal/netsim"
	"fragdb/internal/simtime"
)

func newWarehouse(t *testing.T, seed int64) *Warehouse {
	t.Helper()
	w, err := NewWarehouse(WarehouseConfig{
		Cluster:      core.Config{N: 4, Seed: seed},
		Warehouses:   3,
		Products:     []string{"widgets", "gadgets"},
		InitialStock: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSellReceivePlan(t *testing.T) {
	w := newWarehouse(t, 1)
	cl := w.Cluster()
	defer cl.Shutdown()
	w.Sell(1, "widgets", 30, nil)
	w.Receive(2, "widgets", 10, nil)
	if !cl.Settle(20 * time.Second) {
		t.Fatal("settle")
	}
	// Stocks: w1=70, w2=110, w3=100 => 280. Reorder up to 400 => 120.
	w.Plan(400, nil)
	if !cl.Settle(20 * time.Second) {
		t.Fatal("settle 2")
	}
	if got := w.PlanFor(3, "widgets"); got != 120 {
		t.Errorf("plan = %d, want 120", got)
	}
	if got := w.PlanFor(3, "gadgets"); got != 100 {
		t.Errorf("gadgets plan = %d, want 100", got)
	}
}

func TestSellRefusedWhenOutOfStock(t *testing.T) {
	w := newWarehouse(t, 2)
	cl := w.Cluster()
	defer cl.Shutdown()
	var res core.TxnResult
	w.Sell(1, "widgets", 500, func(r core.TxnResult) { res = r })
	cl.Settle(10 * time.Second)
	if res.Committed {
		t.Error("oversell committed")
	}
	if w.Stock(0, 1, "widgets") != 100 {
		t.Errorf("stock = %d", w.Stock(0, 1, "widgets"))
	}
}

// TestWarehousesAvailableDuringPartitionGloballySerializable is
// experiment E5's core claim: sales continue at partitioned warehouses,
// the central office's scans never see an inconsistent view, and the
// entire history is globally serializable with zero read locks.
func TestWarehousesAvailableDuringPartitionGloballySerializable(t *testing.T) {
	w := newWarehouse(t, 3)
	cl := w.Cluster()
	defer cl.Shutdown()
	// Steady stream of sales at each warehouse, plans at the center,
	// across a partition isolating warehouses 2 and 3.
	for round := 0; round < 6; round++ {
		at := simtime.Time(time.Duration(round*60) * time.Millisecond)
		cl.Sched().At(at, func() {
			for i := 1; i <= 3; i++ {
				w.Sell(i, "widgets", 5, nil)
			}
		})
		cl.Sched().At(at+simtime.Time(30*time.Millisecond), func() {
			w.Plan(500, nil)
		})
	}
	cl.Net().ScheduleSplit(simtime.Time(100*time.Millisecond),
		[]netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
	cl.Net().ScheduleHeal(simtime.Time(300 * time.Millisecond))
	cl.RunFor(500 * time.Millisecond)
	if !cl.Settle(30 * time.Second) {
		t.Fatal("settle")
	}
	// All 18 sales and 6 plans committed.
	if got := cl.Stats().Committed.Load(); got != 24 {
		t.Errorf("committed = %d, want 24", got)
	}
	if err := cl.Recorder().CheckGlobal(history.Options{}); err != nil {
		t.Errorf("global serializability: %v", err)
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	// Final stock: 100 - 30 = 70 each.
	for i := 1; i <= 3; i++ {
		if got := w.Stock(0, i, "widgets"); got != 70 {
			t.Errorf("warehouse %d stock = %d, want 70", i, got)
		}
	}
	// The observed read pattern stayed within the declared star.
	if !cl.Recorder().ObservedRAG().ElementarilyAcyclic() {
		t.Error("observed RAG not elementarily acyclic")
	}
}

func TestWarehouseNeedsEnoughNodes(t *testing.T) {
	_, err := NewWarehouse(WarehouseConfig{
		Cluster:    core.Config{N: 2, Seed: 1},
		Warehouses: 3,
		Products:   []string{"x"},
	})
	if err == nil {
		t.Error("undersized cluster accepted")
	}
}

// TestCrossWarehouseReadOnlyExempt: the Section 4.2 allowance — a
// read-only check of another warehouse's stock succeeds even though no
// read-access edge W1 -> W2 is declared, while an UPDATE transaction
// attempting the same read is refused.
func TestCrossWarehouseReadOnlyExempt(t *testing.T) {
	w := newWarehouse(t, 9)
	cl := w.Cluster()
	defer cl.Shutdown()
	var got int64
	var gerr error
	w.CheckOtherStock(1, 2, "widgets", func(v int64, err error) { got, gerr = v, err })
	cl.Settle(10 * time.Second)
	if gerr != nil || got != 100 {
		t.Fatalf("cross-warehouse check: %d, %v", got, gerr)
	}
	// The same read inside an update transaction violates the declared
	// graph and is refused.
	var res core.TxnResult
	cl.Node(1).Submit(core.TxnSpec{
		Agent: WarehouseAgent(1), Fragment: WarehouseFragment(1),
		Program: func(tx *core.Tx) error {
			_, err := tx.Read("stock:2:widgets")
			if err != nil {
				return err
			}
			return tx.Write("stock:1:widgets", int64(0))
		},
	}, func(r core.TxnResult) { res = r })
	cl.Settle(10 * time.Second)
	if res.Committed {
		t.Error("undeclared cross-warehouse read committed in an update transaction")
	}
}
