// Package workload implements the paper's three motivating
// applications as libraries over the core engine:
//
//   - Bank (Sections 1-2): customer-controlled ACTIVITY fragments,
//     central-office-controlled BALANCES and RECORDED fragments,
//     centralized overdraft fines.
//   - Airline (Section 4.3, Figure 4.3.3; Section 4.4): customer
//     request fragments and flight assignment fragments; overbooking
//     prevented by centralized granting; a stopover flight whose seat
//     fragment's agent moves with the plane.
//   - Warehouse (Section 4.2, Figure 4.2.1): per-warehouse sales and
//     stock fragments read by a central purchasing fragment over an
//     elementarily acyclic read-access graph.
//
// Each application doubles as a workload generator for the experiment
// harness in package exp.
package workload

import (
	"errors"
	"fmt"
	"strings"

	"fragdb/internal/core"
	"fragdb/internal/fragments"
	"fragdb/internal/netsim"
	"fragdb/internal/simtime"
	"fragdb/internal/txn"
)

// ErrInsufficientFunds denies a withdrawal against the locally visible
// balance.
var ErrInsufficientFunds = errors.New("workload: insufficient funds")

// BankConfig configures a Bank.
type BankConfig struct {
	// Cluster is the core configuration (N, option, seed, latencies).
	// The bank forces Option to UnrestrictedReads: its read-access
	// pattern (customers read BALANCES, the central office reads
	// ACTIVITY) is elementarily cyclic by design, so the Section 4.3
	// strategy — fragmentwise serializability — is the one the paper
	// prescribes for it.
	Cluster core.Config
	// CentralNode hosts the central office (agent of BALANCES and all
	// RECORDED fragments).
	CentralNode netsim.NodeID
	// Accounts to create, each with InitialBalance.
	Accounts []string
	// CustomerHome maps each account's customer agent to a home node.
	// Accounts not listed start at CentralNode.
	CustomerHome map[string]netsim.NodeID
	// InitialBalance per account.
	InitialBalance int64
	// OverdraftFine is deducted by the central office whenever
	// processing drives a balance negative.
	OverdraftFine int64
	// ReadLockOption runs the bank under the Section 4.1 control option
	// instead of the Section 4.3 one: withdrawals then lock the BALANCES
	// fragment at the central office, gaining global serializability and
	// losing availability whenever the central office is unreachable.
	// Used by experiment E1 to plot the spectrum.
	ReadLockOption bool
	// Schema, when set, is invoked on the cluster after the bank's own
	// fragments are declared and before Start — the hook for embedding
	// the bank in a larger database (the live workload adds its counter
	// and queue fragments here). Every process of a multi-process
	// deployment must declare the identical schema.
	Schema func(cl *core.Cluster) error
}

// Letter records an overdraft notification "sent" to a customer by the
// central office (the paper's corrective action).
type Letter struct {
	Account string
	Balance int64 // balance at assessment time, before the fine
	Fine    int64
	At      simtime.Time
}

// Bank is the Section 2 banking database on fragments and agents.
type Bank struct {
	cl      *core.Cluster
	central netsim.NodeID
	fine    int64

	// perNodeSeq generates unique activity-entry keys per (node, acct)
	// without reading the ACTIVITY fragment (keeping customer
	// transactions write-only on their own fragment, which is what lets
	// customers move freely; see the Section 4.4.2A remark).
	perNodeSeq map[string]uint64

	// processed marks activity entries already handled by the central
	// office (its in-memory worklist; the durable record is RECORDED).
	processed map[fragments.ObjectID]bool

	// queue serializes the central office's processing: one
	// BALANCES+RECORDED pair at a time, so its own transactions never
	// deadlock with each other.
	queue []bankWork
	busy  bool

	letters []Letter
}

type bankWork struct {
	acct    string
	entries []fragments.ObjectID
}

// CustomerAgent names the agent owning account acct's ACTIVITY fragment.
func CustomerAgent(acct string) fragments.AgentID {
	return fragments.AgentID("cust:" + acct)
}

// activityFragment names account acct's ACTIVITY fragment.
func activityFragment(acct string) fragments.FragmentID {
	return fragments.FragmentID("ACTIVITY(" + acct + ")")
}

// recordedFragment names account acct's RECORDED fragment.
func recordedFragment(acct string) fragments.FragmentID {
	return fragments.FragmentID("RECORDED(" + acct + ")")
}

func balObj(acct string) fragments.ObjectID {
	return fragments.ObjectID("bal:" + acct)
}

// NewBank builds and starts the banking cluster.
func NewBank(cfg BankConfig) (*Bank, error) {
	cfg.Cluster.Option = core.UnrestrictedReads
	if cfg.ReadLockOption {
		cfg.Cluster.Option = core.ReadLocks
	}
	cl := core.NewCluster(cfg.Cluster)
	central := fragments.NodeAgent(cfg.CentralNode)

	balances := make([]fragments.ObjectID, 0, len(cfg.Accounts))
	for _, acct := range cfg.Accounts {
		balances = append(balances, balObj(acct))
	}
	if err := cl.Catalog().AddFragment("BALANCES", balances...); err != nil {
		return nil, err
	}
	cl.Tokens().Assign("BALANCES", central, cfg.CentralNode)
	for _, acct := range cfg.Accounts {
		if err := cl.Catalog().AddFragment(activityFragment(acct)); err != nil {
			return nil, err
		}
		if err := cl.Catalog().AddFragment(recordedFragment(acct)); err != nil {
			return nil, err
		}
		home, ok := cfg.CustomerHome[acct]
		if !ok {
			home = cfg.CentralNode
		}
		cl.Tokens().Assign(activityFragment(acct), CustomerAgent(acct), home)
		cl.Tokens().Assign(recordedFragment(acct), central, cfg.CentralNode)
		// ACTIVITY transactions only create new entries: write-only and
		// commutative, so customers can move freely (Section 4.4.2A).
		cl.SetCommutative(activityFragment(acct))
	}
	if cfg.Schema != nil {
		if err := cfg.Schema(cl); err != nil {
			return nil, err
		}
	}
	if err := cl.Start(); err != nil {
		return nil, err
	}
	for _, acct := range cfg.Accounts {
		if err := cl.Load(balObj(acct), cfg.InitialBalance); err != nil {
			return nil, err
		}
	}
	b := &Bank{
		cl:         cl,
		central:    cfg.CentralNode,
		fine:       cfg.OverdraftFine,
		perNodeSeq: make(map[string]uint64),
		processed:  make(map[fragments.ObjectID]bool),
	}
	cl.OnQuasiApplied(b.onQuasi)
	return b, nil
}

// Cluster exposes the underlying engine (partition control, metrics,
// settling).
func (b *Bank) Cluster() *core.Cluster { return b.cl }

// Letters returns the overdraft notifications issued so far.
func (b *Bank) Letters() []Letter { return b.letters }

// Deposit submits a deposit by acct's customer at the given node.
func (b *Bank) Deposit(node netsim.NodeID, acct string, amount int64, done func(core.TxnResult)) {
	b.operation(node, acct, amount, 0, done)
}

// Withdraw submits a withdrawal by acct's customer at the given node.
// The decision reads the BALANCES fragment's locally replicated value,
// exactly as the paper prescribes; during partitions it may be stale,
// and the central office assesses a fine if an overdraft results.
func (b *Bank) Withdraw(node netsim.NodeID, acct string, amount int64, done func(core.TxnResult)) {
	b.operation(node, acct, -amount, 0, done)
}

// WithdrawWithTimeout is Withdraw with an explicit transaction timeout,
// used by experiments to bound blocking under the Section 4.1 option.
func (b *Bank) WithdrawWithTimeout(node netsim.NodeID, acct string, amount int64,
	timeout simtime.Duration, done func(core.TxnResult)) {
	b.operation(node, acct, -amount, timeout, done)
}

// operation runs one banking operation: signed amount > 0 deposits,
// < 0 withdraws.
func (b *Bank) operation(node netsim.NodeID, acct string, amount int64,
	timeout simtime.Duration, done func(core.TxnResult)) {
	key := fmt.Sprintf("%d:%s", int(node), acct)
	b.perNodeSeq[key]++
	entry := fragments.ObjectID(fmt.Sprintf("act:%s:%d:%d", acct, int(node), b.perNodeSeq[key]))
	kind := "deposit"
	if amount < 0 {
		kind = "withdraw"
	}
	b.cl.Node(node).Submit(core.TxnSpec{
		Agent:    CustomerAgent(acct),
		Fragment: activityFragment(acct),
		Label:    kind + ":" + acct,
		Timeout:  timeout,
		Program: func(tx *core.Tx) error {
			if amount < 0 {
				bal, err := tx.ReadInt(balObj(acct))
				if err != nil {
					return err
				}
				if bal+amount < 0 {
					return ErrInsufficientFunds
				}
			}
			return tx.Write(entry, amount)
		},
	}, done)
}

// onQuasi is the central office's trigger: when an ACTIVITY update is
// installed at the central node, a transaction on BALANCES applies it
// to the balance (assessing a fine if the balance goes negative), and a
// transaction on RECORDED marks the entries processed (Section 2).
func (b *Bank) onQuasi(node netsim.NodeID, q txn.Quasi) {
	if node != b.central {
		return
	}
	f := string(q.Fragment)
	if !strings.HasPrefix(f, "ACTIVITY(") {
		return
	}
	acct := strings.TrimSuffix(strings.TrimPrefix(f, "ACTIVITY("), ")")
	var entries []fragments.ObjectID
	for _, w := range q.Writes {
		if b.processed[w.Object] {
			continue
		}
		b.processed[w.Object] = true
		entries = append(entries, w.Object)
	}
	if len(entries) == 0 {
		return
	}
	b.queue = append(b.queue, bankWork{acct: acct, entries: entries})
	b.kick()
}

// kick starts processing the next queued work item if none is running.
func (b *Bank) kick() {
	if b.busy || len(b.queue) == 0 {
		return
	}
	b.busy = true
	item := b.queue[0]
	b.queue = b.queue[1:]
	b.runWork(item)
}

// runWork executes one BALANCES transaction followed by its RECORDED
// companion — two single-fragment transactions, per the paper's
// footnote on replacing multi-fragment transactions by groups.
func (b *Bank) runWork(item bankWork) {
	central := fragments.NodeAgent(b.central)
	acct, entries := item.acct, item.entries
	b.cl.Node(b.central).Submit(core.TxnSpec{
		Agent: central, Fragment: "BALANCES", Label: "record:" + acct,
		Program: func(tx *core.Tx) error {
			bal, err := tx.ReadInt(balObj(acct))
			if err != nil {
				return err
			}
			for _, e := range entries {
				v, err := tx.ReadInt(e)
				if err != nil {
					return err
				}
				bal += v
			}
			if bal < 0 && b.fine > 0 {
				b.letters = append(b.letters, Letter{
					Account: acct, Balance: bal, Fine: b.fine, At: b.cl.Now(),
				})
				b.cl.Stats().CorrectiveActions.Add(1)
				bal -= b.fine
			}
			return tx.Write(balObj(acct), bal)
		},
	}, func(r core.TxnResult) {
		if !r.Committed {
			// Wounded or deadlocked against customer traffic: retry.
			b.runWork(item)
			return
		}
		b.cl.Node(b.central).Submit(core.TxnSpec{
			Agent: central, Fragment: recordedFragment(acct), Label: "mark:" + acct,
			Program: func(tx *core.Tx) error {
				for _, e := range entries {
					if err := tx.Write(fragments.ObjectID("rec:"+string(e)), true); err != nil {
						return err
					}
				}
				return nil
			},
		}, func(core.TxnResult) {
			b.busy = false
			b.kick()
		})
	})
}

// Balance returns the BALANCES value for acct as replicated at node
// (the recorded balance, not counting unrecorded activity).
func (b *Bank) Balance(node netsim.NodeID, acct string) int64 {
	v, _ := b.cl.Node(node).Store().Get(balObj(acct))
	if v == nil {
		return 0
	}
	return v.(int64)
}

// LocalView computes the paper's "local view of balance" at a node:
// balance + unrecorded deposits - unrecorded withdrawals, using the
// node's replicas of BALANCES, ACTIVITY(acct), and RECORDED(acct).
func (b *Bank) LocalView(node netsim.NodeID, acct string) int64 {
	view := b.Balance(node, acct)
	frag, ok := b.cl.Catalog().Fragment(activityFragment(acct))
	if !ok {
		return view
	}
	store := b.cl.Node(node).Store()
	for _, entry := range frag.Objects() {
		v, known := store.Get(entry)
		if !known {
			continue // not yet replicated here
		}
		if rec, _ := store.Get(fragments.ObjectID("rec:" + string(entry))); rec == true {
			continue // already reflected in the balance
		}
		view += v.(int64)
	}
	return view
}

// MoveCustomer relocates an account's customer agent to another node.
// Because customer transactions are write-only on their own fragment
// (and commutative — they only create new entries), the agent may move
// with no data transport at all, per the Section 4.4.2A observation.
func (b *Bank) MoveCustomer(acct string, to netsim.NodeID) error {
	return b.cl.Tokens().MoveAgent(CustomerAgent(acct), to)
}
