package workload

import (
	"fmt"
	"testing"
	"time"

	"fragdb/internal/core"
	"fragdb/internal/netsim"
)

// TestLiveAllOptions runs the deployment workload (bank + counters +
// queues) on the simulator under each control option: after a burst of
// mixed traffic and a settle, replicas must be mutually consistent, the
// commutative totals must equal the committed operations, and the money
// must add up.
func TestLiveAllOptions(t *testing.T) {
	options := []struct {
		name     string
		readLock bool
		acyclic  bool
	}{
		{"unrestricted", false, false},
		{"read-locks", true, false},
		{"acyclic-reads", false, true},
	}
	for _, opt := range options {
		opt := opt
		t.Run(opt.name, func(t *testing.T) {
			const n = 3
			lv, err := NewLive(LiveConfig{
				Cluster:        core.Config{N: n, Seed: 7},
				CentralNode:    0,
				Accounts:       n,
				InitialBalance: 1000,
				OverdraftFine:  25,
				ReadLockOption: opt.readLock,
				AcyclicOption:  opt.acyclic,
			})
			if err != nil {
				t.Fatal(err)
			}
			cl := lv.Cluster()

			var committedDeposits, committedWithdrawals int64
			commits := 0
			count := func(delta *int64, amt int64) func(core.TxnResult) {
				return func(r core.TxnResult) {
					if r.Committed {
						commits++
						*delta += amt
					}
				}
			}
			var bumps int64
			enqueues := 0
			for round := 0; round < 10; round++ {
				for i := 0; i < n; i++ {
					node := netsim.NodeID(i)
					acct := LiveAccount(i)
					lv.Deposit(node, acct, 50, count(&committedDeposits, 50))
					lv.Withdraw(node, acct, 30, count(&committedWithdrawals, 30))
					lv.Bump(node, 1, func(r core.TxnResult) {
						if r.Committed {
							bumps++
						}
					})
					lv.Enqueue(node, fmt.Sprintf("item-%d-%d", round, i), func(r core.TxnResult) {
						if r.Committed {
							enqueues++
						}
					})
					cl.RunFor(5 * time.Millisecond)
				}
			}
			if !cl.Settle(60 * time.Second) {
				t.Fatal("live workload did not settle")
			}
			if err := cl.CheckMutualConsistency(); err != nil {
				t.Fatal(err)
			}
			if commits == 0 {
				t.Fatal("no bank operations committed")
			}
			// Commutative totals visible at every node.
			for i := 0; i < n; i++ {
				node := netsim.NodeID(i)
				if got := lv.CounterTotal(node); got != bumps {
					t.Errorf("node %d counter total = %d, want %d", i, got, bumps)
				}
				if got := lv.QueueLen(node); got != enqueues {
					t.Errorf("node %d queue length = %d, want %d", i, got, enqueues)
				}
			}
			// Money conservation: total balances = initial + deposits -
			// withdrawals - fines.
			var total int64
			for i := 0; i < n; i++ {
				total += lv.Balance(0, LiveAccount(i))
			}
			var fines int64
			for _, l := range lv.Letters() {
				fines += l.Fine
			}
			want := int64(n)*1000 + committedDeposits - committedWithdrawals - fines
			if total != want {
				t.Errorf("total balances = %d, want %d (deposits %d, withdrawals %d, fines %d)",
					total, want, committedDeposits, committedWithdrawals, fines)
			}
		})
	}
}
