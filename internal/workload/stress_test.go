package workload

import (
	"fmt"
	"testing"
	"time"

	"fragdb/internal/core"
	"fragdb/internal/history"
	"fragdb/internal/netsim"
	"fragdb/internal/simtime"
)

// TestBankManyAccountsUnderChurn: ten accounts with customers spread
// over four nodes, mixed deposits/withdrawals, a customer relocation,
// and a partition episode. Every account's final balance must equal its
// op history, every fine must trace to a real overdraft, and all
// replicas must agree.
func TestBankManyAccountsUnderChurn(t *testing.T) {
	const nAccounts = 10
	accounts := make([]string, nAccounts)
	homes := make(map[string]netsim.NodeID, nAccounts)
	for i := range accounts {
		accounts[i] = fmt.Sprintf("%05d", i+1)
		homes[accounts[i]] = netsim.NodeID(1 + i%3) // nodes 1..3
	}
	b, err := NewBank(BankConfig{
		Cluster:        core.Config{N: 4, Seed: 71},
		CentralNode:    0,
		Accounts:       accounts,
		CustomerHome:   homes,
		InitialBalance: 100,
		OverdraftFine:  25,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := b.Cluster()
	defer cl.Shutdown()

	// Expected net flow per account, ignoring fines (all ops here keep
	// balances non-negative against the TRUE history, so no fines are
	// expected: deposits strictly precede the withdrawals they fund).
	expected := make(map[string]int64, nAccounts)
	for i, acct := range accounts {
		expected[acct] = 100
		node := homes[acct]
		acct := acct
		dep := int64(10 * (i%3 + 1))
		cl.Sched().At(simtime.Time(time.Duration(10+i*20)*time.Millisecond), func() {
			b.Deposit(node, acct, dep, nil)
		})
		expected[acct] += dep
		wd := int64(30)
		wdNode := node
		if i == 0 {
			wdNode = 2 // customer 0 will have moved to node 2 by then
		}
		cl.Sched().At(simtime.Time(time.Duration(600+i*20)*time.Millisecond), func() {
			b.Withdraw(wdNode, acct, wd, nil)
		})
		expected[acct] -= wd
	}
	// One customer moves mid-run (commutative fragment: free move).
	cl.Sched().At(simtime.Time(400*time.Millisecond), func() {
		b.MoveCustomer(accounts[0], 2)
	})
	cl.Net().ScheduleSplit(simtime.Time(200*time.Millisecond),
		[]netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
	cl.Net().ScheduleHeal(simtime.Time(800 * time.Millisecond))
	cl.RunFor(1200 * time.Millisecond)
	if !cl.Settle(2 * time.Minute) {
		t.Fatal("did not settle")
	}
	for _, acct := range accounts {
		if got := b.Balance(0, acct); got != expected[acct] {
			t.Errorf("account %s balance = %d, want %d", acct, got, expected[acct])
		}
	}
	if len(b.Letters()) != 0 {
		t.Errorf("unexpected fines: %+v", b.Letters())
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
	if err := cl.Recorder().CheckFragmentwise(); err != nil {
		t.Errorf("fragmentwise: %v", err)
	}
	if err := cl.Recorder().CheckLocalGraphs(); err != nil {
		t.Errorf("local graphs: %v", err)
	}
}

// TestAirlineManyCustomersCapacityExact: eight customers race for a
// 10-seat flight with requests of 2 seats each (16 requested) from
// partitioned nodes; after the heal and a scan, exactly 10 seats are
// granted and 3 customers are refused.
func TestAirlineManyCustomersCapacityExact(t *testing.T) {
	customers := make([]string, 8)
	custHomes := make(map[string]netsim.NodeID, 8)
	for i := range customers {
		customers[i] = fmt.Sprintf("c%d", i)
		custHomes[customers[i]] = netsim.NodeID(1 + i%3)
	}
	a, err := NewAirline(AirlineConfig{
		Cluster:      core.Config{N: 4, Seed: 73},
		Flights:      map[string]int64{"FL": 10},
		FlightHome:   map[string]netsim.NodeID{"FL": 0},
		Customers:    customers,
		CustomerHome: custHomes,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := a.Cluster()
	defer cl.Shutdown()
	cl.Net().Partition([]netsim.NodeID{0}, []netsim.NodeID{1}, []netsim.NodeID{2}, []netsim.NodeID{3})
	for _, c := range customers {
		a.Request(custHomes[c], c, "FL", 2, nil)
	}
	cl.RunFor(500 * time.Millisecond)
	cl.Net().Heal()
	if !cl.Settle(time.Minute) {
		t.Fatal("settle")
	}
	a.Scan("FL", nil)
	if !cl.Settle(time.Minute) {
		t.Fatal("settle 2")
	}
	booked := a.Booked(0, "FL")
	if booked != 10 {
		t.Fatalf("booked = %d, want exactly capacity 10", booked)
	}
	granted := 0
	for _, c := range customers {
		if a.Seats(0, c, "FL") == 2 {
			granted++
		}
	}
	if granted != 5 || a.Refused != 3 {
		t.Errorf("granted=%d refused=%d, want 5/3", granted, a.Refused)
	}
	if err := cl.Recorder().CheckFragmentwise(); err != nil {
		t.Errorf("fragmentwise: %v", err)
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
}

// TestWarehouseManyProductsPlanConsistency: plans computed over many
// products always reflect a consistent cut of the warehouse fragments
// (the §4.2 guarantee), verified by replaying the plan against the
// serializable history.
func TestWarehouseManyProductsPlanConsistency(t *testing.T) {
	products := []string{"p1", "p2", "p3", "p4", "p5"}
	w, err := NewWarehouse(WarehouseConfig{
		Cluster:      core.Config{N: 4, Seed: 79},
		Warehouses:   3,
		Products:     products,
		InitialStock: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := w.Cluster()
	defer cl.Shutdown()
	for round := 0; round < 5; round++ {
		at := simtime.Time(time.Duration(round*80) * time.Millisecond)
		cl.Sched().At(at, func() {
			for i := 1; i <= 3; i++ {
				for _, p := range products {
					w.Sell(i, p, 1, nil)
				}
			}
		})
	}
	cl.Sched().At(simtime.Time(150*time.Millisecond), func() { w.Plan(500, nil) })
	cl.Net().ScheduleSplit(simtime.Time(100*time.Millisecond),
		[]netsim.NodeID{0, 1}, []netsim.NodeID{2, 3})
	cl.Net().ScheduleHeal(simtime.Time(300 * time.Millisecond))
	cl.RunFor(600 * time.Millisecond)
	if !cl.Settle(2 * time.Minute) {
		t.Fatal("settle")
	}
	// Final stocks: 50 - 5 = 45 per product per warehouse.
	for i := 1; i <= 3; i++ {
		for _, p := range products {
			if got := w.Stock(0, i, p); got != 45 {
				t.Errorf("stock[%d][%s] = %d, want 45", i, p, got)
			}
		}
	}
	if err := cl.Recorder().CheckGlobal(history.Options{}); err != nil {
		t.Errorf("global serializability: %v", err)
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
}
