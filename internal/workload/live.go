package workload

import (
	"fmt"

	"fragdb/internal/core"
	"fragdb/internal/fragments"
	"fragdb/internal/netsim"
)

// Live is the deployment workload: the Section 2 bank plus, per node, a
// commutative counter fragment and a commutative queue fragment. The
// three client kinds span the availability spectrum the paper predicts:
//
//   - bank withdrawals read the BALANCES fragment, so their
//     availability depends on the control option (remote locks at the
//     central office under ReadLocks; local possibly-stale reads under
//     UnrestrictedReads);
//   - bank deposits, counter bumps, and queue appends are write-only on
//     a locally homed commutative fragment — available whenever the
//     local node is up, no matter what the rest of the cluster does.
//
// Every process of a multi-process deployment builds the identical
// schema from the same LiveConfig; each then submits only at its own
// node.
type Live struct {
	*Bank
	n int

	// seq generates unique entry keys per local fragment. Touched only
	// from engine context (the scheduler goroutine / loop), like the
	// bank's own sequence map.
	seq map[fragments.FragmentID]uint64

	// Forwarding state (see forward.go): outstanding remote operations
	// by request id. Touched only from engine context.
	nextFwd uint64
	pending map[uint64]*pendingFwd
}

// LiveConfig configures a Live workload.
type LiveConfig struct {
	// Cluster is the engine configuration, including Transport /
	// SingleNode / LocalNode for a real deployment.
	Cluster core.Config
	// CentralNode hosts the bank's central office.
	CentralNode netsim.NodeID
	// Accounts is how many bank accounts to create (default 2 per
	// node), homed round-robin across nodes.
	Accounts int
	// InitialBalance and OverdraftFine as in BankConfig (defaults 1000
	// and 25).
	InitialBalance int64
	OverdraftFine  int64
	// ReadLockOption selects the Section 4.1 control option for the
	// bank instead of Section 4.3.
	ReadLockOption bool
	// AcyclicOption runs withdrawals lock-free under the Section 4.2
	// option by declaring the ACTIVITY→BALANCES read edges (customers
	// read the balance; the central office's BALANCES transactions read
	// ACTIVITY, which is the cyclic direction, so the office keeps the
	// unrestricted policy via a per-fragment override).
	AcyclicOption bool
}

// LiveAccount names account i of a Live workload.
func LiveAccount(i int) string { return fmt.Sprintf("A%02d", i) }

func counterFragment(node netsim.NodeID) fragments.FragmentID {
	return fragments.FragmentID(fmt.Sprintf("CTR(%d)", int(node)))
}

func queueFragment(node netsim.NodeID) fragments.FragmentID {
	return fragments.FragmentID(fmt.Sprintf("QUEUE(%d)", int(node)))
}

func counterAgent(node netsim.NodeID) fragments.AgentID {
	return fragments.AgentID(fmt.Sprintf("ctr:%d", int(node)))
}

func queueAgent(node netsim.NodeID) fragments.AgentID {
	return fragments.AgentID(fmt.Sprintf("q:%d", int(node)))
}

// NewLive builds and starts the live workload's cluster.
func NewLive(cfg LiveConfig) (*Live, error) {
	n := cfg.Cluster.N
	if cfg.Accounts <= 0 {
		cfg.Accounts = 2 * n
	}
	if cfg.InitialBalance == 0 {
		cfg.InitialBalance = 1000
	}
	if cfg.OverdraftFine == 0 {
		cfg.OverdraftFine = 25
	}
	bcfg := BankConfig{
		Cluster:        cfg.Cluster,
		CentralNode:    cfg.CentralNode,
		InitialBalance: cfg.InitialBalance,
		OverdraftFine:  cfg.OverdraftFine,
		ReadLockOption: cfg.ReadLockOption,
		CustomerHome:   make(map[string]netsim.NodeID),
	}
	for i := 0; i < cfg.Accounts; i++ {
		acct := LiveAccount(i)
		bcfg.Accounts = append(bcfg.Accounts, acct)
		bcfg.CustomerHome[acct] = netsim.NodeID(i % n)
	}
	bcfg.Schema = func(cl *core.Cluster) error {
		for i := 0; i < n; i++ {
			node := netsim.NodeID(i)
			for _, f := range []fragments.FragmentID{counterFragment(node), queueFragment(node)} {
				if err := cl.Catalog().AddFragment(f); err != nil {
					return err
				}
				cl.SetCommutative(f)
			}
			cl.Tokens().Assign(counterFragment(node), counterAgent(node), node)
			cl.Tokens().Assign(queueFragment(node), queueAgent(node), node)
		}
		if cfg.AcyclicOption {
			// Customers read BALANCES: the declared, elementarily acyclic
			// direction. The office's own transaction types keep the
			// unrestricted policy (their ACTIVITY reads close the cycle).
			for _, acct := range bcfg.Accounts {
				cl.DeclareRead(activityFragment(acct), "BALANCES")
				cl.SetFragmentOption(activityFragment(acct), core.AcyclicReads)
			}
		}
		return nil
	}
	if cfg.AcyclicOption {
		bcfg.ReadLockOption = false // base option stays unrestricted
	}
	b, err := NewBank(bcfg)
	if err != nil {
		return nil, err
	}
	lv := &Live{Bank: b, n: n,
		seq:     make(map[fragments.FragmentID]uint64),
		pending: make(map[uint64]*pendingFwd),
	}
	lv.installForwarding()
	return lv, nil
}

// next returns a fresh entry key for the node-local fragment f.
func (lv *Live) next(f fragments.FragmentID, node netsim.NodeID) fragments.ObjectID {
	lv.seq[f]++
	return fragments.ObjectID(fmt.Sprintf("%s:%d:%d", f, int(node), lv.seq[f]))
}

// Bump submits an increment of the node's own counter fragment
// (write-only commutative: a new entry with the increment value),
// routed to the agent's current home if placement moved it.
func (lv *Live) Bump(node netsim.NodeID, by int64, done func(core.TxnResult)) {
	lv.BumpAt(node, node, by, done)
}

// Enqueue appends an item to the node's own queue fragment, routed to
// the agent's current home if placement moved it.
func (lv *Live) Enqueue(node netsim.NodeID, item string, done func(core.TxnResult)) {
	lv.EnqueueAt(node, node, item, done)
}

// CounterTotal sums every counter entry replicated at the node.
func (lv *Live) CounterTotal(at netsim.NodeID) int64 {
	var total int64
	store := lv.Cluster().Node(at).Store()
	for i := 0; i < lv.n; i++ {
		frag, ok := lv.Cluster().Catalog().Fragment(counterFragment(netsim.NodeID(i)))
		if !ok {
			continue
		}
		for _, o := range frag.Objects() {
			if v, known := store.Get(o); known {
				if inc, ok := v.(int64); ok {
					total += inc
				}
			}
		}
	}
	return total
}

// QueueLen counts every queue entry replicated at the node.
func (lv *Live) QueueLen(at netsim.NodeID) int {
	count := 0
	store := lv.Cluster().Node(at).Store()
	for i := 0; i < lv.n; i++ {
		frag, ok := lv.Cluster().Catalog().Fragment(queueFragment(netsim.NodeID(i)))
		if !ok {
			continue
		}
		for _, o := range frag.Objects() {
			if _, known := store.Get(o); known {
				count++
			}
		}
	}
	return count
}
