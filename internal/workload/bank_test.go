package workload

import (
	"errors"
	"testing"
	"time"

	"fragdb/internal/core"
	"fragdb/internal/netsim"
)

func newBank(t *testing.T, seed int64) *Bank {
	t.Helper()
	b, err := NewBank(BankConfig{
		Cluster:     core.Config{N: 3, Seed: seed},
		CentralNode: 0,
		Accounts:    []string{"00001", "00002"},
		CustomerHome: map[string]netsim.NodeID{
			"00001": 1,
			"00002": 2,
		},
		InitialBalance: 300,
		OverdraftFine:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDepositFlowsToBalance(t *testing.T) {
	b := newBank(t, 1)
	cl := b.Cluster()
	defer cl.Shutdown()
	var res core.TxnResult
	b.Deposit(1, "00001", 150, func(r core.TxnResult) { res = r })
	if !cl.Settle(20 * time.Second) {
		t.Fatal("did not settle")
	}
	if !res.Committed {
		t.Fatalf("deposit = %+v", res)
	}
	// The central office processed it: recorded balance is 450
	// everywhere.
	for i := 0; i < 3; i++ {
		if got := b.Balance(netsim.NodeID(i), "00001"); got != 450 {
			t.Errorf("node %d balance = %d, want 450", i, got)
		}
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
}

func TestWithdrawDeniedOnInsufficientLocalView(t *testing.T) {
	b := newBank(t, 2)
	cl := b.Cluster()
	defer cl.Shutdown()
	var res core.TxnResult
	b.Withdraw(1, "00001", 400, func(r core.TxnResult) { res = r })
	cl.Settle(10 * time.Second)
	if res.Committed || !errors.Is(res.Err, ErrInsufficientFunds) {
		t.Fatalf("res = %+v", res)
	}
	if got := b.Balance(0, "00001"); got != 300 {
		t.Errorf("balance = %d", got)
	}
}

// TestScenario1 reproduces Section 1's first scenario on the
// fragments-and-agents system: two $100 withdrawals from a $300 account
// on opposite sides of a partition. Both are served (availability), and
// after the heal the central office folds both in with no overdraft.
func TestScenario1BothServedNoOverdraft(t *testing.T) {
	b := newBank(t, 3)
	cl := b.Cluster()
	defer cl.Shutdown()
	// Customer 00001's agent can issue at any node it is homed at; to
	// model "the same customer withdrawing at two locations", move the
	// agent between ops (commutative fragment: free movement).
	cl.Net().Partition([]netsim.NodeID{0, 1}, []netsim.NodeID{2})
	var r1, r2 core.TxnResult
	b.Withdraw(1, "00001", 100, func(r core.TxnResult) { r1 = r })
	cl.RunFor(100 * time.Millisecond)
	if err := b.MoveCustomer("00001", 2); err != nil {
		t.Fatal(err)
	}
	b.Withdraw(2, "00001", 100, func(r core.TxnResult) { r2 = r })
	cl.RunFor(100 * time.Millisecond)
	if !r1.Committed || !r2.Committed {
		t.Fatalf("r1=%+v r2=%+v (both must be served)", r1, r2)
	}
	cl.Net().Heal()
	if !cl.Settle(30 * time.Second) {
		t.Fatal("did not settle")
	}
	if got := b.Balance(0, "00001"); got != 100 {
		t.Errorf("final balance = %d, want 100", got)
	}
	if len(b.Letters()) != 0 {
		t.Errorf("letters = %+v, want none", b.Letters())
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
}

// TestScenario2 reproduces Section 1's second scenario: two $200
// withdrawals from $300. Both are served during the partition (each
// side's view shows $300); the central office discovers the overdraft,
// assesses the fine exactly once, and sends one letter — the
// centralized corrective action of Section 2.
func TestScenario2OverdraftFinedOnce(t *testing.T) {
	b := newBank(t, 4)
	cl := b.Cluster()
	defer cl.Shutdown()
	cl.Net().Partition([]netsim.NodeID{0, 1}, []netsim.NodeID{2})
	var r1, r2 core.TxnResult
	b.Withdraw(1, "00001", 200, func(r core.TxnResult) { r1 = r })
	cl.RunFor(100 * time.Millisecond)
	if err := b.MoveCustomer("00001", 2); err != nil {
		t.Fatal(err)
	}
	b.Withdraw(2, "00001", 200, func(r core.TxnResult) { r2 = r })
	cl.RunFor(100 * time.Millisecond)
	if !r1.Committed || !r2.Committed {
		t.Fatalf("r1=%+v r2=%+v", r1, r2)
	}
	cl.Net().Heal()
	if !cl.Settle(30 * time.Second) {
		t.Fatal("did not settle")
	}
	// 300 - 200 - 200 = -100, fine 50 => -150.
	if got := b.Balance(2, "00001"); got != -150 {
		t.Errorf("final balance = %d, want -150", got)
	}
	if len(b.Letters()) != 1 {
		t.Fatalf("letters = %d, want exactly 1 (centralized decision)", len(b.Letters()))
	}
	if b.Letters()[0].Account != "00001" || b.Letters()[0].Fine != 50 {
		t.Errorf("letter = %+v", b.Letters()[0])
	}
	if cl.Stats().CorrectiveActions.Load() != 1 {
		t.Errorf("corrective actions = %d", cl.Stats().CorrectiveActions.Load())
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
}

func TestLocalViewTracksUnrecordedActivity(t *testing.T) {
	b := newBank(t, 5)
	cl := b.Cluster()
	defer cl.Shutdown()
	// Partition the customer's node away from the central office: the
	// deposit stays unrecorded, but the local view reflects it.
	cl.Net().Partition([]netsim.NodeID{1}, []netsim.NodeID{0, 2})
	b.Deposit(1, "00001", 120, nil)
	cl.RunFor(500 * time.Millisecond)
	if got := b.Balance(1, "00001"); got != 300 {
		t.Errorf("recorded balance = %d, want 300 (unprocessed)", got)
	}
	if got := b.LocalView(1, "00001"); got != 420 {
		t.Errorf("local view = %d, want 420", got)
	}
	// The central office's view does not include it yet.
	if got := b.LocalView(0, "00001"); got != 300 {
		t.Errorf("central local view = %d, want 300", got)
	}
	cl.Net().Heal()
	if !cl.Settle(30 * time.Second) {
		t.Fatal("did not settle")
	}
	// Now recorded everywhere; local view equals balance again.
	for i := 0; i < 3; i++ {
		n := netsim.NodeID(i)
		if b.Balance(n, "00001") != 420 || b.LocalView(n, "00001") != 420 {
			t.Errorf("node %d: balance=%d view=%d, want 420/420",
				i, b.Balance(n, "00001"), b.LocalView(n, "00001"))
		}
	}
}

func TestTwoAccountsIndependent(t *testing.T) {
	b := newBank(t, 6)
	cl := b.Cluster()
	defer cl.Shutdown()
	b.Deposit(1, "00001", 10, nil)
	b.Withdraw(2, "00002", 20, nil)
	if !cl.Settle(20 * time.Second) {
		t.Fatal("did not settle")
	}
	if b.Balance(0, "00001") != 310 || b.Balance(0, "00002") != 280 {
		t.Errorf("balances = %d, %d", b.Balance(0, "00001"), b.Balance(0, "00002"))
	}
	if err := cl.Recorder().CheckFragmentwise(); err != nil {
		t.Errorf("fragmentwise: %v", err)
	}
}

func TestCustomerMovesFreelyDuringPartition(t *testing.T) {
	// The commutative-fragment property: a customer hops across three
	// nodes (including across partition boundaries) and every operation
	// is eventually folded in exactly once.
	b := newBank(t, 7)
	cl := b.Cluster()
	defer cl.Shutdown()
	cl.Net().Partition([]netsim.NodeID{0}, []netsim.NodeID{1}, []netsim.NodeID{2})
	b.Deposit(1, "00001", 10, nil)
	cl.RunFor(50 * time.Millisecond)
	b.MoveCustomer("00001", 2)
	b.Deposit(2, "00001", 20, nil)
	cl.RunFor(50 * time.Millisecond)
	b.MoveCustomer("00001", 0)
	b.Deposit(0, "00001", 30, nil)
	cl.RunFor(50 * time.Millisecond)
	cl.Net().Heal()
	if !cl.Settle(30 * time.Second) {
		t.Fatal("did not settle")
	}
	if got := b.Balance(1, "00001"); got != 360 {
		t.Errorf("balance = %d, want 360", got)
	}
	if err := cl.CheckMutualConsistency(); err != nil {
		t.Error(err)
	}
}
