// Package wire provides a gob-based codec for the messages the system
// exchanges, so experiments can account for real wire sizes (the 1986
// testbed's point-to-point links are simulated, but the bytes that
// would cross them are measured from actual encodings, not guesses).
//
// The simulated transports pass Go values directly for speed; Size
// encodes a payload once to measure it, and Encode/Decode round-trip
// payloads for tests and for any future transport that ships real
// bytes.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"fragdb/internal/broadcast"
	"fragdb/internal/txn"
)

// envelope wraps payloads so heterogeneous message types decode through
// a single interface field.
type envelope struct {
	P any
}

var registerOnce sync.Once

// RegisterDefaults registers the exported message types of the protocol
// stack with gob. Call before Encode/Decode/Size; it is idempotent.
func RegisterDefaults() {
	registerOnce.Do(func() {
		gob.Register(txn.Quasi{})
		gob.Register(txn.WriteOp{})
		gob.Register(broadcast.Data{})
		gob.Register(broadcast.Digest{})
		// SnapshotOffer itself is registered; its State field may hold an
		// unexported application type, in which case Size reports 0 for
		// the offer (the simulation never ships real bytes).
		gob.Register(broadcast.SnapshotOffer{})
		gob.Register(int64(0))
		gob.Register("")
		gob.Register(true)
	})
}

// Encode serializes a payload.
func Encode(payload any) ([]byte, error) {
	RegisterDefaults()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(envelope{P: payload}); err != nil {
		return nil, fmt.Errorf("wire: encode %T: %w", payload, err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a payload produced by Encode.
func Decode(b []byte) (any, error) {
	RegisterDefaults()
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return env.P, nil
}

// Size reports the encoded size of a payload in bytes, or 0 if the
// payload is not encodable (unexported message types used only inside
// the simulation). Suitable for netsim.WithSizeFunc.
func Size(payload any) int {
	b, err := Encode(payload)
	if err != nil {
		return 0
	}
	return len(b)
}
