// Package wire provides the codec for the messages the system
// exchanges, so experiments can account for real wire sizes (the 1986
// testbed's point-to-point links are simulated, but the bytes that
// would cross them are measured from actual encodings, not guesses).
//
// Encodings carry a one-byte format tag. The hot propagation types —
// txn.Quasi, broadcast.Data, broadcast.DataBatch, broadcast.Digest —
// take a hand-rolled binary fast path (varint fields, one exact-sized
// allocation per message, no reflection); everything else, and hot
// types holding payload values the fast path cannot represent, falls
// back to gob behind tag 0. Size computes the fast-path size
// analytically without encoding at all, and memoizes unencodable
// payload types, so per-message byte accounting (netsim.WithSizeFunc,
// the broadcast LogBytes gauge) costs nanoseconds instead of a full
// encode per call.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math/bits"
	"reflect"
	"sync"

	"fragdb/internal/broadcast"
	"fragdb/internal/fragments"
	"fragdb/internal/netsim"
	"fragdb/internal/simtime"
	"fragdb/internal/txn"
)

// Format tags: the first byte of every encoding.
const (
	tagGob    byte = 0x00 // gob-encoded envelope follows
	tagQuasi  byte = 0x01
	tagData   byte = 0x02
	tagBatch  byte = 0x03
	tagDigest byte = 0x04
)

// Value tags for `any`-typed payload slots (WriteOp.Value,
// Data.Payload, DataBatch.Payloads elements).
const (
	valNil    byte = 0x00
	valBool   byte = 0x01
	valInt    byte = 0x02
	valInt64  byte = 0x03
	valUint64 byte = 0x04
	valString byte = 0x05
	valQuasi  byte = 0x06
)

// envelope wraps payloads so heterogeneous message types decode through
// a single interface field on the gob fallback path.
type envelope struct {
	P any
}

var registerOnce sync.Once

// RegisterDefaults registers the exported message types of the protocol
// stack with gob. Call before Encode/Decode/Size; it is idempotent.
func RegisterDefaults() {
	registerOnce.Do(func() {
		gob.Register(txn.Quasi{})
		gob.Register(txn.WriteOp{})
		gob.Register(broadcast.Data{})
		gob.Register(broadcast.DataBatch{})
		gob.Register(broadcast.Digest{})
		// SnapshotOffer itself is registered; its State field may hold an
		// unexported application type, in which case Size reports 0 for
		// the offer (the simulation never ships real bytes).
		gob.Register(broadcast.SnapshotOffer{})
		gob.Register(int64(0))
		gob.Register("")
		gob.Register(true)
	})
}

// Encode serializes a payload: fast path for the hot propagation types,
// gob for everything else.
func Encode(payload any) ([]byte, error) {
	switch m := payload.(type) {
	case txn.Quasi:
		if quasiFast(m) {
			out := make([]byte, 1, 1+sizeQuasi(m))
			out[0] = tagQuasi
			return appendQuasi(out, m), nil
		}
	case broadcast.Data:
		if valueFast(m.Payload) {
			out := make([]byte, 1, 1+sizeData(m))
			out[0] = tagData
			return appendData(out, m), nil
		}
	case broadcast.DataBatch:
		if batchFast(m) {
			out := make([]byte, 1, 1+sizeBatch(m))
			out[0] = tagBatch
			return appendBatch(out, m), nil
		}
	case broadcast.Digest:
		out := make([]byte, 1, 1+sizeDigest(m))
		out[0] = tagDigest
		return appendDigest(out, m), nil
	}
	return encodeGob(payload)
}

// Decode deserializes a payload produced by Encode.
func Decode(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, errors.New("wire: decode: empty buffer")
	}
	r := reader{b: b, off: 1}
	switch b[0] {
	case tagGob:
		return decodeGob(b[1:])
	case tagQuasi:
		q := r.quasi()
		if r.err != nil {
			return nil, fmt.Errorf("wire: decode quasi: %w", r.err)
		}
		return q, nil
	case tagData:
		m := broadcast.Data{Origin: r.nodeID(), Seq: r.uvarint()}
		m.Payload = r.value()
		if r.err != nil {
			return nil, fmt.Errorf("wire: decode data: %w", r.err)
		}
		return m, nil
	case tagBatch:
		m := broadcast.DataBatch{Origin: r.nodeID(), Start: r.uvarint()}
		n := r.count()
		if r.err == nil && n > 0 {
			m.Payloads = make([]any, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				m.Payloads = append(m.Payloads, r.value())
			}
		}
		if r.err != nil {
			return nil, fmt.Errorf("wire: decode batch: %w", r.err)
		}
		return m, nil
	case tagDigest:
		m := broadcast.Digest{Delta: r.bool()}
		n := r.count()
		if r.err == nil {
			m.Have = make(map[netsim.NodeID]uint64, n)
			for i := 0; i < n && r.err == nil; i++ {
				o := r.nodeID()
				m.Have[o] = r.uvarint()
			}
		}
		if r.err != nil {
			return nil, fmt.Errorf("wire: decode digest: %w", r.err)
		}
		return m, nil
	}
	return nil, fmt.Errorf("wire: decode: unknown format tag %#x", b[0])
}

// Size reports the encoded size of a payload in bytes, or 0 if the
// payload is not encodable (unexported message types used only inside
// the simulation). For the fast-path types the size is computed
// analytically, without encoding; for other types a failed encode is
// memoized per concrete type, so repeated Size calls on unencodable
// simulation-internal messages cost one map lookup. Suitable for
// netsim.WithSizeFunc.
func Size(payload any) int {
	switch m := payload.(type) {
	case txn.Quasi:
		if quasiFast(m) {
			return 1 + sizeQuasi(m)
		}
	case broadcast.Data:
		if valueFast(m.Payload) {
			return 1 + sizeData(m)
		}
	case broadcast.DataBatch:
		if batchFast(m) {
			return 1 + sizeBatch(m)
		}
	case broadcast.Digest:
		return 1 + sizeDigest(m)
	case nil:
		return 0
	}
	if t := reflect.TypeOf(payload); t != nil {
		if _, bad := unencodable.Load(t); bad {
			return 0
		}
		b, err := encodeGob(payload)
		if err != nil {
			unencodable.Store(t, struct{}{})
			return 0
		}
		return len(b)
	}
	return 0
}

// unencodable memoizes concrete types gob cannot encode (unexported
// simulation-internal messages), keyed by reflect.Type.
var unencodable sync.Map

// gobBufs pools the scratch buffers of the gob fallback path.
var gobBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func encodeGob(payload any) ([]byte, error) {
	RegisterDefaults()
	buf := gobBufs.Get().(*bytes.Buffer)
	defer gobBufs.Put(buf)
	buf.Reset()
	buf.WriteByte(tagGob)
	if err := gob.NewEncoder(buf).Encode(envelope{P: payload}); err != nil {
		return nil, fmt.Errorf("wire: encode %T: %w", payload, err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

func decodeGob(b []byte) (any, error) {
	RegisterDefaults()
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return env.P, nil
}

// ---- fast-path eligibility ------------------------------------------

// valueFast reports whether v fits the value encoding of `any` slots.
func valueFast(v any) bool {
	switch q := v.(type) {
	case nil, bool, int, int64, uint64, string:
		return true
	case txn.Quasi:
		return quasiFast(q)
	}
	return false
}

// quasiFast reports whether every write value of q is a fast scalar
// (nested quasis inside quasis are not a thing; anything exotic takes
// the gob fallback for the whole message).
func quasiFast(q txn.Quasi) bool {
	for _, w := range q.Writes {
		switch w.Value.(type) {
		case nil, bool, int, int64, uint64, string:
		default:
			return false
		}
	}
	return true
}

func batchFast(m broadcast.DataBatch) bool {
	for _, p := range m.Payloads {
		if !valueFast(p) {
			return false
		}
	}
	return true
}

// ---- analytic sizes --------------------------------------------------

func sizeUvarint(x uint64) int { return (bits.Len64(x|1) + 6) / 7 }

func sizeVarint(x int64) int {
	return sizeUvarint(uint64(x)<<1 ^ uint64(x>>63)) // zigzag
}

func sizeString(s string) int { return sizeUvarint(uint64(len(s))) + len(s) }

func sizeValue(v any) int {
	switch x := v.(type) {
	case nil:
		return 1
	case bool:
		return 2
	case int:
		return 1 + sizeVarint(int64(x))
	case int64:
		return 1 + sizeVarint(x)
	case uint64:
		return 1 + sizeUvarint(x)
	case string:
		return 1 + sizeString(x)
	case txn.Quasi:
		return 1 + sizeQuasi(x)
	}
	return 0 // unreachable behind valueFast
}

func sizeQuasi(q txn.Quasi) int {
	n := sizeVarint(int64(q.Txn.Origin)) + sizeUvarint(q.Txn.Seq)
	n += sizeString(string(q.Fragment))
	n += sizeUvarint(q.Pos.Epoch) + sizeUvarint(q.Pos.Seq)
	n += sizeVarint(int64(q.Home))
	n += sizeVarint(int64(q.Stamp))
	n += sizeUvarint(uint64(len(q.Writes)))
	for _, w := range q.Writes {
		n += sizeString(string(w.Object)) + sizeValue(w.Value)
	}
	return n
}

func sizeData(m broadcast.Data) int {
	return sizeVarint(int64(m.Origin)) + sizeUvarint(m.Seq) + sizeValue(m.Payload)
}

func sizeBatch(m broadcast.DataBatch) int {
	n := sizeVarint(int64(m.Origin)) + sizeUvarint(m.Start) +
		sizeUvarint(uint64(len(m.Payloads)))
	for _, p := range m.Payloads {
		n += sizeValue(p)
	}
	return n
}

func sizeDigest(m broadcast.Digest) int {
	n := 1 + sizeUvarint(uint64(len(m.Have)))
	for o, h := range m.Have {
		n += sizeVarint(int64(o)) + sizeUvarint(h)
	}
	return n
}

// ---- encoding --------------------------------------------------------

func appendVarint(b []byte, x int64) []byte {
	return binary.AppendUvarint(b, uint64(x)<<1^uint64(x>>63))
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(b, valNil)
	case bool:
		if x {
			return append(b, valBool, 1)
		}
		return append(b, valBool, 0)
	case int:
		return appendVarint(append(b, valInt), int64(x))
	case int64:
		return appendVarint(append(b, valInt64), x)
	case uint64:
		return binary.AppendUvarint(append(b, valUint64), x)
	case string:
		return appendString(append(b, valString), x)
	case txn.Quasi:
		return appendQuasi(append(b, valQuasi), x)
	}
	panic(fmt.Sprintf("wire: appendValue on unchecked type %T", v))
}

func appendQuasi(b []byte, q txn.Quasi) []byte {
	b = appendVarint(b, int64(q.Txn.Origin))
	b = binary.AppendUvarint(b, q.Txn.Seq)
	b = appendString(b, string(q.Fragment))
	b = binary.AppendUvarint(b, q.Pos.Epoch)
	b = binary.AppendUvarint(b, q.Pos.Seq)
	b = appendVarint(b, int64(q.Home))
	b = appendVarint(b, int64(q.Stamp))
	b = binary.AppendUvarint(b, uint64(len(q.Writes)))
	for _, w := range q.Writes {
		b = appendString(b, string(w.Object))
		b = appendValue(b, w.Value)
	}
	return b
}

func appendData(b []byte, m broadcast.Data) []byte {
	b = appendVarint(b, int64(m.Origin))
	b = binary.AppendUvarint(b, m.Seq)
	return appendValue(b, m.Payload)
}

func appendBatch(b []byte, m broadcast.DataBatch) []byte {
	b = appendVarint(b, int64(m.Origin))
	b = binary.AppendUvarint(b, m.Start)
	b = binary.AppendUvarint(b, uint64(len(m.Payloads)))
	for _, p := range m.Payloads {
		b = appendValue(b, p)
	}
	return b
}

// appendDigest encodes the Have vector sorted by node id, so equal
// digests encode to equal bytes (map iteration order must not leak into
// the wire image).
func appendDigest(b []byte, m broadcast.Digest) []byte {
	if m.Delta {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Have)))
	ids := make([]netsim.NodeID, 0, len(m.Have))
	for o := range m.Have {
		ids = append(ids, o)
	}
	for i := 1; i < len(ids); i++ { // insertion sort: tiny n, zero alloc
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, o := range ids {
		b = appendVarint(b, int64(o))
		b = binary.AppendUvarint(b, m.Have[o])
	}
	return b
}

// ---- decoding --------------------------------------------------------

// reader is a bounds-checked cursor over an encoded message. All length
// and count fields are validated against the remaining input before any
// allocation, so hostile inputs cannot force large allocations.
type reader struct {
	b   []byte
	off int
	err error
}

var errTruncated = errors.New("truncated input")

func (r *reader) fail() {
	if r.err == nil {
		r.err = errTruncated
	}
}

func (r *reader) byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *reader) bool() bool { return r.byte() != 0 }

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return x
}

func (r *reader) varint() int64 {
	x := r.uvarint()
	return int64(x>>1) ^ -int64(x&1) // un-zigzag
}

func (r *reader) nodeID() netsim.NodeID { return netsim.NodeID(r.varint()) }

// count reads an element count, rejecting values that could not fit in
// the remaining input (every element takes at least one byte).
func (r *reader) count() int {
	n := r.uvarint()
	if r.err == nil && n > uint64(len(r.b)-r.off) {
		r.fail()
		return 0
	}
	return int(n)
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) value() any {
	switch r.byte() {
	case valNil:
		return nil
	case valBool:
		return r.byte() != 0
	case valInt:
		return int(r.varint())
	case valInt64:
		return r.varint()
	case valUint64:
		return r.uvarint()
	case valString:
		return r.str()
	case valQuasi:
		return r.quasi()
	default:
		if r.err == nil {
			r.err = errors.New("unknown value tag")
		}
		return nil
	}
}

func (r *reader) quasi() txn.Quasi {
	var q txn.Quasi
	q.Txn.Origin = r.nodeID()
	q.Txn.Seq = r.uvarint()
	q.Fragment = fragments.FragmentID(r.str())
	q.Pos.Epoch = r.uvarint()
	q.Pos.Seq = r.uvarint()
	q.Home = r.nodeID()
	q.Stamp = simtime.Time(r.varint())
	n := r.count()
	if r.err != nil || n == 0 {
		return q
	}
	q.Writes = make([]txn.WriteOp, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		var w txn.WriteOp
		w.Object = fragments.ObjectID(r.str())
		w.Value = r.value()
		q.Writes = append(q.Writes, w)
	}
	return q
}
