package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame layer: when messages leave the process (the rtnet TCP
// transport), each Encode output is carried as one length-prefixed
// frame on a byte stream:
//
//	frame := uvarint(len(payload)) payload
//
// The length prefix is untrusted input. ReadFrame validates it against
// the configured maximum BEFORE allocating, so a corrupt or hostile
// peer can cost at most maxFrame bytes per frame, never a multi-GB
// make([]byte, n) or an out-of-memory kill. Zero-length frames are
// rejected too: every Encode output starts with a format tag, so an
// empty frame is always a framing bug, and rejecting it keeps the
// stream parser from spinning on a zeroed buffer.

// MaxFrameDefault bounds frame payloads when the caller passes
// maxFrame <= 0. 1 MiB is far above any message this protocol emits
// (the largest are DataBatches capped by the broadcast's
// BatchMaxBytes) while keeping the worst-case per-frame allocation
// harmless.
const MaxFrameDefault = 1 << 20

// Framing errors. ErrFrameTooBig and ErrFrameCorrupt are protocol
// violations: the stream is unrecoverable and the connection should be
// dropped.
var (
	ErrFrameTooBig  = errors.New("wire: frame length exceeds maximum")
	ErrFrameCorrupt = errors.New("wire: corrupt frame header")
)

// AppendFrame appends payload as one frame to dst and returns the
// extended buffer. Writing the prefix and payload as one buffer lets a
// connection writer issue a single Write per frame.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// FrameOverhead reports the prefix size a payload of n bytes carries.
func FrameOverhead(n int) int { return sizeUvarint(uint64(n)) }

// ReadFrame reads one frame from r, returning its payload. The length
// prefix is validated against maxFrame (MaxFrameDefault when <= 0)
// before any allocation. io.EOF is returned only at a clean frame
// boundary; a stream ending mid-header or mid-payload returns
// io.ErrUnexpectedEOF, so callers can tell a peer's orderly close from
// a connection reset mid-frame.
func ReadFrame(r *bufio.Reader, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrameDefault
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			// EOF on the first header byte is a clean close; ReadUvarint
			// returns bare io.EOF there and ErrUnexpectedEOF mid-varint.
			return nil, err
		}
		if err.Error() == "binary: varint overflows a 64-bit integer" {
			return nil, fmt.Errorf("%w: %v", ErrFrameCorrupt, err)
		}
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length frame", ErrFrameCorrupt)
	}
	if n > uint64(maxFrame) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooBig, n, maxFrame)
	}
	buf := make([]byte, int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}
