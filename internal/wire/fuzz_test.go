package wire

import (
	"bytes"
	"testing"

	"fragdb/internal/broadcast"
	"fragdb/internal/netsim"
	"fragdb/internal/txn"
)

// corpusPayloads are representative protocol messages: their encodings
// seed the fuzzer so it mutates from valid wire bytes rather than
// random noise.
func corpusPayloads() []any {
	q := txn.Quasi{
		Txn:      txn.ID{Origin: 2, Seq: 7},
		Fragment: "BALANCES",
		Pos:      txn.FragPos{Epoch: 1, Seq: 42},
		Home:     2,
		Writes: []txn.WriteOp{
			{Object: "bal:00001", Value: int64(300)},
			{Object: "act:00001:2:1", Value: int64(-100)},
		},
	}
	return []any{
		q,
		broadcast.Data{Origin: 1, Seq: 9, Payload: q},
		broadcast.DataBatch{Origin: 1, Start: 9, Payloads: []any{q, "m1", int64(3), nil}},
		broadcast.Digest{},
		broadcast.Digest{Have: map[netsim.NodeID]uint64{0: 3, 1: 7}, Delta: true},
		int64(-1),
		"m0",
		true,
	}
}

// FuzzDecode feeds arbitrary bytes to Decode: it must either return an
// error or a payload that re-encodes and re-decodes stably — never
// panic. The seed corpus is built from real encoded messages.
func FuzzDecode(f *testing.F) {
	for _, p := range corpusPayloads() {
		b, err := Encode(p)
		if err != nil {
			f.Fatalf("seeding corpus: %v", err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // gob can allocate proportionally; bound the input
		}
		v, err := Decode(data)
		if err != nil {
			return // rejected, fine
		}
		// Accepted payloads must round-trip: encode/decode is how every
		// byte-shipping transport would relay them.
		b2, err := Encode(v)
		if err != nil {
			t.Fatalf("decoded %T but cannot re-encode: %v", v, err)
		}
		v2, err := Decode(b2)
		if err != nil {
			t.Fatalf("re-decode of re-encoded %T failed: %v", v, err)
		}
		b3, err := Encode(v2)
		if err != nil {
			t.Fatalf("second re-encode of %T failed: %v", v2, err)
		}
		if !bytes.Equal(b2, b3) {
			t.Fatalf("unstable encoding for %T:\n%x\n%x", v, b2, b3)
		}
	})
}

// TestEncodedCorpusRoundTrips keeps the corpus honest as a plain test:
// every seeded payload must round-trip through Encode/Decode.
func TestEncodedCorpusRoundTrips(t *testing.T) {
	for _, p := range corpusPayloads() {
		b, err := Encode(p)
		if err != nil {
			t.Fatalf("encode %T: %v", p, err)
		}
		v, err := Decode(b)
		if err != nil {
			t.Fatalf("decode %T: %v", p, err)
		}
		b2, err := Encode(v)
		if err != nil {
			t.Fatalf("re-encode %T: %v", v, err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("%T does not round-trip stably", p)
		}
	}
}
