package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"fragdb/internal/broadcast"
	"fragdb/internal/netsim"
	"fragdb/internal/txn"
)

// corpusPayloads are representative protocol messages: their encodings
// seed the fuzzer so it mutates from valid wire bytes rather than
// random noise.
func corpusPayloads() []any {
	q := txn.Quasi{
		Txn:      txn.ID{Origin: 2, Seq: 7},
		Fragment: "BALANCES",
		Pos:      txn.FragPos{Epoch: 1, Seq: 42},
		Home:     2,
		Writes: []txn.WriteOp{
			{Object: "bal:00001", Value: int64(300)},
			{Object: "act:00001:2:1", Value: int64(-100)},
		},
	}
	return []any{
		q,
		broadcast.Data{Origin: 1, Seq: 9, Payload: q},
		broadcast.DataBatch{Origin: 1, Start: 9, Payloads: []any{q, "m1", int64(3), nil}},
		broadcast.Digest{},
		broadcast.Digest{Have: map[netsim.NodeID]uint64{0: 3, 1: 7}, Delta: true},
		int64(-1),
		"m0",
		true,
	}
}

// FuzzDecode feeds arbitrary bytes to Decode: it must either return an
// error or a payload that re-encodes and re-decodes stably — never
// panic. The seed corpus is built from real encoded messages.
func FuzzDecode(f *testing.F) {
	for _, p := range corpusPayloads() {
		b, err := Encode(p)
		if err != nil {
			f.Fatalf("seeding corpus: %v", err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	// Hostile length fields: each declares vastly more elements or bytes
	// than the buffer holds. The bounds-checked reader must reject them
	// (count/str validate against the remaining input before allocating);
	// these pin the untrusted-input contract the TCP transport relies on.
	for _, hostile := range hostileLengthCorpus() {
		f.Add(hostile)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // gob can allocate proportionally; bound the input
		}
		v, err := Decode(data)
		if err != nil {
			return // rejected, fine
		}
		// Accepted payloads must round-trip: encode/decode is how every
		// byte-shipping transport would relay them.
		b2, err := Encode(v)
		if err != nil {
			t.Fatalf("decoded %T but cannot re-encode: %v", v, err)
		}
		v2, err := Decode(b2)
		if err != nil {
			t.Fatalf("re-decode of re-encoded %T failed: %v", v, err)
		}
		b3, err := Encode(v2)
		if err != nil {
			t.Fatalf("second re-encode of %T failed: %v", v2, err)
		}
		if !bytes.Equal(b2, b3) {
			t.Fatalf("unstable encoding for %T:\n%x\n%x", v, b2, b3)
		}
	})
}

// hostileLengthCorpus builds short buffers whose internal length and
// count fields declare sizes far beyond the buffer: oversized string
// lengths, write counts, batch counts, digest counts, plus truncations
// of a valid message at every prefix-interesting point.
func hostileLengthCorpus() [][]byte {
	big := binary.AppendUvarint(nil, 1<<60)
	var out [][]byte
	// tagQuasi, origin 0, seq 0, then a fragment-name length of 2^60.
	out = append(out, append([]byte{tagQuasi, 0x00, 0x00}, big...))
	// tagQuasi with a valid empty fragment but a 2^60 write count:
	// origin, seq, fragment len 0, epoch, seq, home, stamp, count.
	q := []byte{tagQuasi, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}
	out = append(out, append(q, big...))
	// tagBatch declaring 2^60 payloads.
	out = append(out, append([]byte{tagBatch, 0x00, 0x00}, big...))
	// tagDigest declaring 2^60 Have entries.
	out = append(out, append([]byte{tagDigest, 0x01}, big...))
	// tagData whose string value declares 2^60 bytes.
	out = append(out, append([]byte{tagData, 0x00, 0x00, valString}, big...))
	// Truncations of a real message at every length.
	full, err := Encode(corpusPayloads()[0])
	if err == nil {
		for i := 1; i < len(full); i += 3 {
			out = append(out, full[:i])
		}
	}
	return out
}

// TestHostileLengthsRejected runs the hostile corpus directly (the
// fuzzer seeds are only exercised under -fuzz): every entry must be
// rejected with an error, not a panic or a giant allocation.
func TestHostileLengthsRejected(t *testing.T) {
	for i, b := range hostileLengthCorpus() {
		if v, err := Decode(b); err == nil {
			// Truncated prefixes can legitimately decode when the cut
			// lands on a message boundary; hostile declared-length
			// entries never can.
			if i < 5 {
				t.Errorf("hostile entry %d (%x) decoded to %T, want error", i, b, v)
			}
		}
	}
}

// TestEncodedCorpusRoundTrips keeps the corpus honest as a plain test:
// every seeded payload must round-trip through Encode/Decode.
func TestEncodedCorpusRoundTrips(t *testing.T) {
	for _, p := range corpusPayloads() {
		b, err := Encode(p)
		if err != nil {
			t.Fatalf("encode %T: %v", p, err)
		}
		v, err := Decode(b)
		if err != nil {
			t.Fatalf("decode %T: %v", p, err)
		}
		b2, err := Encode(v)
		if err != nil {
			t.Fatalf("re-encode %T: %v", v, err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("%T does not round-trip stably", p)
		}
	}
}
