package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	payloads := [][]byte{
		{0x01},
		bytes.Repeat([]byte{0xab}, 300),
		bytes.Repeat([]byte{0xcd}, MaxFrameDefault),
	}
	for _, p := range payloads {
		stream = AppendFrame(stream, p)
	}
	r := bufio.NewReader(bytes.NewReader(stream))
	for i, want := range payloads {
		got, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(r, 0); err != io.EOF {
		t.Fatalf("want clean io.EOF at stream end, got %v", err)
	}
}

func TestFrameOversizedLengthRejectedBeforeAllocation(t *testing.T) {
	// A tiny input declaring a multi-GB payload must fail fast with
	// ErrFrameTooBig: the declared length is validated before any
	// allocation, so this test would OOM (not merely fail) if the check
	// regressed to allocate-then-read.
	for _, n := range []uint64{uint64(MaxFrameDefault) + 1, 1 << 32, 1 << 62} {
		hdr := binary.AppendUvarint(nil, n)
		r := bufio.NewReader(bytes.NewReader(hdr))
		_, err := ReadFrame(r, 0)
		if !errors.Is(err, ErrFrameTooBig) {
			t.Fatalf("declared length %d: want ErrFrameTooBig, got %v", n, err)
		}
	}
	// A custom cap is honored too.
	hdr := binary.AppendUvarint(nil, 17)
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr)), 16); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("want ErrFrameTooBig under custom cap, got %v", err)
	}
}

func TestFrameTruncationAndCorruption(t *testing.T) {
	t.Run("mid-payload", func(t *testing.T) {
		stream := AppendFrame(nil, bytes.Repeat([]byte{1}, 100))
		r := bufio.NewReader(bytes.NewReader(stream[:50]))
		if _, err := ReadFrame(r, 0); err != io.ErrUnexpectedEOF {
			t.Fatalf("want io.ErrUnexpectedEOF mid-payload, got %v", err)
		}
	})
	t.Run("mid-header", func(t *testing.T) {
		// 0x80 is an unterminated varint: a continuation bit with no
		// following byte.
		r := bufio.NewReader(bytes.NewReader([]byte{0x80}))
		if _, err := ReadFrame(r, 0); err != io.ErrUnexpectedEOF {
			t.Fatalf("want io.ErrUnexpectedEOF mid-header, got %v", err)
		}
	})
	t.Run("zero-length", func(t *testing.T) {
		r := bufio.NewReader(bytes.NewReader([]byte{0x00, 0xaa}))
		if _, err := ReadFrame(r, 0); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("want ErrFrameCorrupt for zero-length frame, got %v", err)
		}
	})
	t.Run("overlong-varint", func(t *testing.T) {
		// 11 continuation bytes overflow a 64-bit varint.
		bad := bytes.Repeat([]byte{0xff}, 11)
		r := bufio.NewReader(bytes.NewReader(bad))
		if _, err := ReadFrame(r, 0); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("want ErrFrameCorrupt for overlong varint, got %v", err)
		}
	})
}

func TestFrameCarriesEncodedMessages(t *testing.T) {
	// End-to-end shape of the TCP transport's stream: Encode, frame,
	// read back, Decode.
	var stream []byte
	for _, p := range corpusPayloads() {
		b, err := Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		stream = AppendFrame(stream, b)
	}
	r := bufio.NewReader(bytes.NewReader(stream))
	for i := range corpusPayloads() {
		b, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if _, err := Decode(b); err != nil {
			t.Fatalf("frame %d decode: %v", i, err)
		}
	}
}

// FuzzReadFrame feeds arbitrary byte streams to the frame parser: it
// must never allocate beyond the cap (enforced structurally: the test
// cap is tiny, so any accepted payload is tiny) and never panic, and
// it must make progress on every accepted frame.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendFrame(nil, []byte{0x01, 0x02}))
	f.Add(binary.AppendUvarint(nil, 1<<40))
	f.Add([]byte{0x80})
	f.Add(bytes.Repeat([]byte{0xff}, 12))
	f.Fuzz(func(t *testing.T, data []byte) {
		const cap = 1 << 10
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			b, err := ReadFrame(r, cap)
			if err != nil {
				return
			}
			if len(b) == 0 || len(b) > cap {
				t.Fatalf("accepted frame of %d bytes under cap %d", len(b), cap)
			}
		}
	})
}
