package wire

import (
	"encoding/gob"
	"reflect"
	"testing"

	"fragdb/internal/broadcast"
	"fragdb/internal/netsim"
	"fragdb/internal/txn"
)

func TestQuasiRoundTrip(t *testing.T) {
	q := txn.Quasi{
		Txn:      txn.ID{Origin: 2, Seq: 7},
		Fragment: "BALANCES",
		Pos:      txn.FragPos{Epoch: 1, Seq: 3},
		Home:     2,
		Writes: []txn.WriteOp{
			{Object: "bal:00001", Value: int64(250)},
			{Object: "bal:00002", Value: int64(-50)},
		},
		Stamp: 12345,
	}
	b, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, q)
	}
}

func TestBroadcastDataWithNestedQuasi(t *testing.T) {
	d := broadcast.Data{
		Origin: 1, Seq: 9,
		Payload: txn.Quasi{
			Txn: txn.ID{Origin: 1, Seq: 9}, Fragment: "F",
			Writes: []txn.WriteOp{{Object: "x", Value: int64(1)}},
		},
	}
	b, err := Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, d)
	}
}

func TestDigestRoundTrip(t *testing.T) {
	d := broadcast.Digest{Have: map[netsim.NodeID]uint64{0: 3, 2: 9}}
	b, err := Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("round trip: got %+v want %+v", got, d)
	}
}

func TestSizeGrowsWithPayload(t *testing.T) {
	small := txn.Quasi{Fragment: "F", Writes: []txn.WriteOp{{Object: "x", Value: int64(1)}}}
	big := txn.Quasi{Fragment: "F"}
	for i := 0; i < 50; i++ {
		big.Writes = append(big.Writes, txn.WriteOp{
			Object: "some-long-object-name", Value: int64(i),
		})
	}
	ss, bs := Size(small), Size(big)
	if ss <= 0 || bs <= ss {
		t.Errorf("sizes: small=%d big=%d", ss, bs)
	}
}

func TestSizeOfUnencodableIsZero(t *testing.T) {
	type private struct{ ch chan int }
	if got := Size(private{}); got != 0 {
		t.Errorf("Size of unencodable = %d", got)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestDataBatchRoundTrip(t *testing.T) {
	m := broadcast.DataBatch{
		Origin: 2,
		Start:  17,
		Payloads: []any{
			txn.Quasi{
				Txn: txn.ID{Origin: 2, Seq: 17}, Fragment: "F",
				Writes: []txn.WriteOp{{Object: "x", Value: int64(1)}},
			},
			"marker",
			int64(-9),
			42,
			uint64(7),
			true,
			nil,
		},
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] == 0 {
		t.Fatal("DataBatch took the gob fallback, want fast path")
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestDeltaDigestRoundTrip(t *testing.T) {
	d := broadcast.Digest{Have: map[netsim.NodeID]uint64{1: 4}, Delta: true}
	b, err := Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("round trip: got %+v want %+v", got, d)
	}
}

// TestSizeMatchesEncode: the analytic fast-path Size must agree exactly
// with the bytes Encode produces, for every fast type — netsim's byte
// accounting and the LogBytes gauge are built on it.
func TestSizeMatchesEncode(t *testing.T) {
	q := txn.Quasi{
		Txn:      txn.ID{Origin: 2, Seq: 700},
		Fragment: "BALANCES",
		Pos:      txn.FragPos{Epoch: 3, Seq: 1 << 40},
		Home:     4,
		Writes: []txn.WriteOp{
			{Object: "bal:00001", Value: int64(-250)},
			{Object: "flag", Value: true},
			{Object: "note", Value: "overdraft"},
			{Object: "gone", Value: nil},
		},
		Stamp: 987654321,
	}
	payloads := []any{
		q,
		broadcast.Data{Origin: 1, Seq: 9, Payload: q},
		broadcast.Data{Origin: 0, Seq: 1, Payload: "plain"},
		broadcast.DataBatch{Origin: 3, Start: 100, Payloads: []any{q, "x", int64(5), 11}},
		broadcast.Digest{Have: map[netsim.NodeID]uint64{0: 3, 1: 1 << 33, 2: 9}},
		broadcast.Digest{Have: map[netsim.NodeID]uint64{}, Delta: true},
	}
	for _, p := range payloads {
		b, err := Encode(p)
		if err != nil {
			t.Fatalf("encode %T: %v", p, err)
		}
		if got, want := Size(p), len(b); got != want {
			t.Errorf("%T: Size=%d, len(Encode)=%d", p, got, want)
		}
	}
}

// TestFastPathFallsBackForExoticValues: hot types carrying values the
// fast encoding cannot represent must take the gob fallback whole and
// still round-trip.
func TestFastPathFallsBackForExoticValues(t *testing.T) {
	payloads := []any{
		broadcast.Data{Origin: 0, Seq: 1, Payload: []string{"a", "b"}},
		txn.Quasi{Fragment: "F", Writes: []txn.WriteOp{{Object: "x", Value: float64(1.5)}}},
		broadcast.DataBatch{Origin: 0, Start: 1, Payloads: []any{map[string]int64{"k": 1}}},
	}
	gob.Register([]string(nil))
	gob.Register(float64(0))
	gob.Register(map[string]int64(nil))
	for _, p := range payloads {
		b, err := Encode(p)
		if err != nil {
			t.Fatalf("encode %T: %v", p, err)
		}
		if b[0] != 0 {
			t.Fatalf("%T with exotic value took fast path (tag %#x)", p, b[0])
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("decode %T: %v", p, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, p)
		}
	}
}

// TestSizeMemoizesUnencodable: the first Size call on an unencodable
// type pays the failed encode; subsequent calls hit the type memo (the
// observable contract is just that they stay 0 and cheap).
func TestSizeMemoizesUnencodable(t *testing.T) {
	type secret struct{ ch chan int }
	if got := Size(secret{}); got != 0 {
		t.Fatalf("Size of unencodable = %d", got)
	}
	if _, ok := unencodable.Load(reflect.TypeOf(secret{})); !ok {
		t.Error("unencodable type not memoized after failed Size")
	}
	if got := Size(secret{}); got != 0 {
		t.Fatalf("memoized Size of unencodable = %d", got)
	}
}
