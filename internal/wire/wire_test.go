package wire

import (
	"reflect"
	"testing"

	"fragdb/internal/broadcast"
	"fragdb/internal/netsim"
	"fragdb/internal/txn"
)

func TestQuasiRoundTrip(t *testing.T) {
	q := txn.Quasi{
		Txn:      txn.ID{Origin: 2, Seq: 7},
		Fragment: "BALANCES",
		Pos:      txn.FragPos{Epoch: 1, Seq: 3},
		Home:     2,
		Writes: []txn.WriteOp{
			{Object: "bal:00001", Value: int64(250)},
			{Object: "bal:00002", Value: int64(-50)},
		},
		Stamp: 12345,
	}
	b, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, q)
	}
}

func TestBroadcastDataWithNestedQuasi(t *testing.T) {
	d := broadcast.Data{
		Origin: 1, Seq: 9,
		Payload: txn.Quasi{
			Txn: txn.ID{Origin: 1, Seq: 9}, Fragment: "F",
			Writes: []txn.WriteOp{{Object: "x", Value: int64(1)}},
		},
	}
	b, err := Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, d)
	}
}

func TestDigestRoundTrip(t *testing.T) {
	d := broadcast.Digest{Have: map[netsim.NodeID]uint64{0: 3, 2: 9}}
	b, err := Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("round trip: got %+v want %+v", got, d)
	}
}

func TestSizeGrowsWithPayload(t *testing.T) {
	small := txn.Quasi{Fragment: "F", Writes: []txn.WriteOp{{Object: "x", Value: int64(1)}}}
	big := txn.Quasi{Fragment: "F"}
	for i := 0; i < 50; i++ {
		big.Writes = append(big.Writes, txn.WriteOp{
			Object: "some-long-object-name", Value: int64(i),
		})
	}
	ss, bs := Size(small), Size(big)
	if ss <= 0 || bs <= ss {
		t.Errorf("sizes: small=%d big=%d", ss, bs)
	}
}

func TestSizeOfUnencodableIsZero(t *testing.T) {
	type private struct{ ch chan int }
	if got := Size(private{}); got != 0 {
		t.Errorf("Size of unencodable = %d", got)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob")); err == nil {
		t.Error("garbage decoded")
	}
}
