package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"fragdb/internal/broadcast"
	"fragdb/internal/netsim"
	"fragdb/internal/txn"
)

// benchQuasi is a representative committed quasi-transaction: a
// two-write bank transfer, the hot payload of every propagation run.
func benchQuasi() txn.Quasi {
	return txn.Quasi{
		Txn:      txn.ID{Origin: 2, Seq: 90210},
		Fragment: "BALANCES",
		Pos:      txn.FragPos{Epoch: 3, Seq: 90211},
		Home:     2,
		Writes: []txn.WriteOp{
			{Object: "bal:00001", Value: int64(300)},
			{Object: "act:00001:2:90210", Value: int64(-100)},
		},
		Stamp: 1234567890,
	}
}

func benchDigest() broadcast.Digest {
	return broadcast.Digest{Have: map[netsim.NodeID]uint64{
		0: 1041, 1: 980, 2: 1203, 3: 997, 4: 1100,
	}}
}

// gobBaselineEncode replicates the pre-fast-path Encode: a fresh gob
// encoder per message, no buffer pooling, no tag byte.
func gobBaselineEncode(payload any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&payload); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobBaselineDecode(b []byte) (any, error) {
	var payload any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func gobBaselineSize(payload any) int {
	b, err := gobBaselineEncode(payload)
	if err != nil {
		return 0
	}
	return len(b)
}

// BenchmarkWireCodec pits the hand-rolled fast path against the old
// gob-per-call baseline for the two hottest message types. CI's bench
// smoke runs this; the fast path must stay well ahead of gob.
func BenchmarkWireCodec(b *testing.B) {
	RegisterDefaults()
	payloads := []struct {
		name string
		v    any
	}{
		{"quasi", benchQuasi()},
		{"digest", benchDigest()},
	}
	for _, p := range payloads {
		enc, err := Encode(p.v)
		if err != nil {
			b.Fatal(err)
		}
		gobEnc, err := gobBaselineEncode(p.v)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("encode/fast/"+p.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Encode(p.v); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("encode/gob/"+p.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gobBaselineEncode(p.v); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decode/fast/"+p.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decode/gob/"+p.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gobBaselineDecode(gobEnc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("size/fast/"+p.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if Size(p.v) == 0 {
					b.Fatal("zero size")
				}
			}
		})
		b.Run("size/gob/"+p.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if gobBaselineSize(p.v) == 0 {
					b.Fatal("zero size")
				}
			}
		})
	}

	batch := broadcast.DataBatch{Origin: 2, Start: 90200}
	for i := 0; i < 16; i++ {
		q := benchQuasi()
		q.Txn.Seq += uint64(i)
		batch.Payloads = append(batch.Payloads, q)
	}
	encBatch, err := Encode(batch)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode/fast/batch16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Encode(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/gob/batch16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gobBaselineEncode(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/fast/batch16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Decode(encBatch); err != nil {
				b.Fatal(err)
			}
		}
	})
}
