package fragdb_test

import (
	"fmt"
	"time"

	"fragdb"
)

// Example builds the smallest useful cluster: one fragment per node,
// an update during a partition, convergence after the heal, and the
// built-in correctness audit.
func Example() {
	cl := fragdb.NewCluster(fragdb.Config{N: 3, Option: fragdb.UnrestrictedReads, Seed: 1})
	cl.Catalog().AddFragment("F", "x")
	cl.Tokens().Assign("F", fragdb.NodeAgent(0), 0)
	if err := cl.Start(); err != nil {
		panic(err)
	}
	cl.Load("x", int64(0))
	defer cl.Shutdown()

	// Node 2 is partitioned away; the agent at node 0 updates anyway.
	cl.Net().Partition([]fragdb.NodeID{0, 1}, []fragdb.NodeID{2})
	cl.Node(0).Submit(fragdb.TxnSpec{
		Agent: fragdb.NodeAgent(0), Fragment: "F",
		Program: func(tx *fragdb.Tx) error {
			v, err := tx.ReadInt("x")
			if err != nil {
				return err
			}
			return tx.Write("x", v+42)
		},
	}, func(r fragdb.TxnResult) {
		fmt.Println("committed during partition:", r.Committed)
	})
	cl.RunFor(time.Second)

	cl.Net().Heal()
	cl.Settle(time.Minute)
	v, _ := cl.Node(2).Store().Get("x")
	fmt.Println("node 2 after heal:", v)
	fmt.Println("fragmentwise serializable:", cl.Recorder().CheckFragmentwise() == nil)
	fmt.Println("mutually consistent:", cl.CheckMutualConsistency() == nil)

	// Output:
	// committed during partition: true
	// node 2 after heal: 42
	// fragmentwise serializable: true
	// mutually consistent: true
}
