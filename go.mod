module fragdb

go 1.22
