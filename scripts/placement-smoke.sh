#!/usr/bin/env bash
# placement-smoke.sh — CI smoke test of adaptive placement on a real
# cluster: start 3 hanode processes with the placement controller
# enabled (scraping each other's /metrics), drive a skewed counter
# workload whose locality shifts mid-run, and assert at least one
# automatic migration completed — visible both in /admin/placement and
# as a changed counter-agent home — while the replicas stayed
# consistent. Artifacts (load report, placement snapshots, node logs)
# stay in $RUNDIR for upload.
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
export RUNDIR="${RUNDIR:-/tmp/fragdb-placement-smoke}"
CLUSTER="$REPO/scripts/cluster.sh"
TARGETS=127.0.0.1:8100,127.0.0.1:8101,127.0.0.1:8102
trap '"$CLUSTER" stop >/dev/null 2>&1 || true' EXIT

"$CLUSTER" start 3 unrestricted \
  -placement -placement-interval 500ms -metrics-peers "$TARGETS"
(cd "$REPO" && go build -o "$RUNDIR/haload" ./cmd/haload)

# All-bump mix, 90% aimed at a remote counter, re-aimed at 6s: the
# access pattern the controller exists to chase.
"$RUNDIR/haload" -targets "$TARGETS" -clients 16 -duration 12s -quiet \
  -mix bump=1 -skew 0.9 -shift-at 6s -out "$RUNDIR/load.json"
# Let in-flight moves and quasi-applies finish before inspecting.
sleep 2

fail() {
  echo "PLACEMENT SMOKE FAIL: $*" >&2
  for i in 0 1 2; do
    echo "--- node $i placement:" >&2
    cat "$RUNDIR/placement$i.json" >&2 || true
  done
  exit 1
}

total_moves=0
for i in 0 1 2; do
  curl -fsS "http://127.0.0.1:810$i/admin/placement" \
    >"$RUNDIR/placement$i.json" || fail "node $i /admin/placement unreachable"
  # History records carry a boolean "completed" — match only the
  # integer status counter.
  moves=$(sed -n 's/^ *"completed": \([0-9][0-9]*\),*$/\1/p' "$RUNDIR/placement$i.json" | head -1)
  total_moves=$((total_moves + ${moves:-0}))
done
[ "$total_moves" -ge 1 ] ||
  fail "no automatic migration completed anywhere (total=$total_moves)"
grep -q '"agent":' "$RUNDIR"/placement*.json ||
  fail "no migration history recorded despite completed count"

# The skewed load must have actually committed, and every replica must
# agree on the counter total after the moves.
commits=$(sed -n 's/^ *"committed": \([0-9]*\),*/\1/p' "$RUNDIR/load.json" | head -1)
[ -n "$commits" ] && [ "$commits" -gt 0 ] || fail "load committed nothing"
totals=""
for i in 0 1 2; do
  curl -fsS "http://127.0.0.1:810$i/state" >"$RUNDIR/state$i.json" ||
    fail "node $i /state unreachable"
  ctr=$(sed -n 's/^ *"counter": \([0-9]*\),*/\1/p' "$RUNDIR/state$i.json" | head -1)
  totals+="${totals:+ }$ctr"
done
set -- $totals
[ "$1" = "$2" ] && [ "$2" = "$3" ] ||
  fail "replicas disagree on counter total: $totals"

echo "PLACEMENT SMOKE OK: $total_moves migrations, $commits commits, counter=$1 on all nodes"
