#!/usr/bin/env bash
# obs-smoke.sh — CI smoke test of the cluster observatory: start a
# 3-process cluster, drive it briefly with haload, take one haobs
# snapshot, and assert the observatory actually observed the cluster —
# a populated availability spectrum, a per-fragment hotspot table, and
# at least one fully-correlated cross-node transaction timeline.
# Artifacts (the spectrum JSON, haobs stdout, node logs) stay in
# $RUNDIR for upload.
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
export RUNDIR="${RUNDIR:-/tmp/fragdb-obs-smoke}"
CLUSTER="$REPO/scripts/cluster.sh"
TARGETS=127.0.0.1:8100,127.0.0.1:8101,127.0.0.1:8102
trap '"$CLUSTER" stop >/dev/null 2>&1 || true' EXIT

"$CLUSTER" start 3 unrestricted
(cd "$REPO" && go build -o "$RUNDIR/haload" ./cmd/haload)
(cd "$REPO" && go build -o "$RUNDIR/haobs" ./cmd/haobs)

"$RUNDIR/haload" -targets "$TARGETS" -clients 16 -duration 5s -quiet \
  -out "$RUNDIR/load.json"
# Give the broadcast layer a beat so quasi-applies land on replicas
# before the trace rings are scraped.
sleep 1

SNAP="$RUNDIR/spectrum.json"
"$RUNDIR/haobs" -targets "$TARGETS" -once -out "$SNAP" \
  >"$RUNDIR/haobs.txt" 2>&1

fail() { echo "OBS SMOKE FAIL: $*" >&2; cat "$RUNDIR/haobs.txt" >&2; exit 1; }

[ -s "$SNAP" ] || fail "no snapshot written"
grep -q '"schema": "fragdb-obs/1"' "$SNAP" || fail "snapshot schema missing"
grep -q '"class":' "$SNAP" || fail "spectrum has no transaction classes"
grep -q '"frag":' "$SNAP" || fail "no hotspot rows"
grep -q '"cross_node": true' "$SNAP" ||
  fail "no cross-node transaction timeline correlated"

# The rendered report must carry the three sections the observatory
# promises: spectrum, hotspots, timelines — and see no partition on a
# healthy cluster.
grep -q 'availability spectrum' "$RUNDIR/haobs.txt" || fail "no spectrum section"
grep -q 'hotspots' "$RUNDIR/haobs.txt" || fail "no hotspot section"
grep -q 'timelines: [1-9]' "$RUNDIR/haobs.txt" || fail "no correlated timelines"
grep -q 'partition: none' "$RUNDIR/haobs.txt" || fail "healthy cluster reports a partition"

# Commits must have registered in the spectrum (haload ran for 5s).
commits=$(sed -n 's/^ *"commits": \([0-9.]*\),*/\1/p' "$SNAP" | head -1)
[ -n "$commits" ] && [ "${commits%.*}" -gt 0 ] ||
  fail "spectrum shows no commits: ${commits:-none}"

echo "OBS SMOKE OK: commits=$commits, snapshot at $SNAP"
