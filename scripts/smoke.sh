#!/usr/bin/env bash
# smoke.sh — CI smoke test of the real deployment: start a 3-process
# cluster, drive it briefly with haload, and assert that operations
# commit, every peer link connects, and the replicas expose consistent
# commutative totals. Artifacts (per-node logs, the haload JSON report)
# stay in $RUNDIR for upload.
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
export RUNDIR="${RUNDIR:-/tmp/fragdb-smoke}"
CLUSTER="$REPO/scripts/cluster.sh"
trap '"$CLUSTER" stop >/dev/null 2>&1 || true' EXIT

"$CLUSTER" start 3 unrestricted
(cd "$REPO" && go build -o "$RUNDIR/haload" ./cmd/haload)

TARGETS=127.0.0.1:8100,127.0.0.1:8101,127.0.0.1:8102
"$RUNDIR/haload" -targets "$TARGETS" -clients 16 -duration 5s \
  -quiet -out "$RUNDIR/smoke.json"

fail() { echo "SMOKE FAIL: $*" >&2; exit 1; }

committed=$(sed -n 's/^ *"committed": \([0-9]*\),*/\1/p' "$RUNDIR/smoke.json" | head -1)
failed=$(sed -n 's/^ *"failed": \([0-9]*\),*/\1/p' "$RUNDIR/smoke.json" | head -1)
[ -n "$committed" ] && [ "$committed" -gt 100 ] ||
  fail "too few commits: ${committed:-none}"
[ "${failed:-1}" = 0 ] || fail "transport failures during healthy run: $failed"

# Every peer link must report connected.
for i in 0 1 2; do
  down=$(curl -fsS "http://127.0.0.1:$((8100 + i))/healthz" |
    grep -c '"connected": false' || true)
  [ "$down" = 0 ] || fail "node $i reports disconnected peers"
done

# Commutative totals must converge to the same value at every replica.
for _ in $(seq 1 100); do
  counters=$(for i in 0 1 2; do
    curl -fsS "http://127.0.0.1:$((8100 + i))/state" |
      sed -n 's/^ *"counter": \([0-9]*\),*/\1/p'
  done)
  [ "$(echo "$counters" | sort -u | wc -l)" = 1 ] && converged=1 && break
  converged=0
  sleep 0.2
done
[ "${converged:-0}" = 1 ] || fail "counter totals did not converge: $counters"

echo "SMOKE OK: $committed commits, counters converged at $(echo "$counters" | head -1)"
