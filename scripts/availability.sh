#!/usr/bin/env bash
# availability.sh — the paper's availability experiment on a real
# cluster. For each control option it starts a 3-process cluster,
# drives it with closed-loop load for 45s, and injects two faults
# mid-run:
#
#   t=10s  kill -9 node 2          (a leaf node dies without warning)
#   t=18s  restart node 2          (it rejoins and catches up)
#   t=26s  partition node 0        (the central office is isolated by
#                                   transport drop rules on both sides)
#   t=34s  heal the partition
#
# The per-second commits/aborts timeline lands in
# $RUNDIR/<option>.json; the per-phase summary table is printed and
# written to $RUNDIR/availability.md. A background haobs watches the
# cluster throughout each run and archives its final availability
# spectrum (per-class rates, hotspots, partition view, cross-node
# timelines) to $RUNDIR/<option>.spectrum.json. Expectation (paper §4):
# write-only commutative traffic and unrestricted reads ride through
# the central office partition, while read-locks traffic aborts on it.
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
export RUNDIR="${RUNDIR:-/tmp/fragdb-avail}"
CLUSTER="$REPO/scripts/cluster.sh"
TARGETS=127.0.0.1:8100,127.0.0.1:8101,127.0.0.1:8102
OPTIONS=${OPTIONS:-"unrestricted read-locks acyclic-reads"}
DURATION=${DURATION:-45}
trap '"$CLUSTER" stop >/dev/null 2>&1 || true' EXIT

mkdir -p "$RUNDIR"
(cd "$REPO" && go build -o "$RUNDIR/haload" ./cmd/haload)
(cd "$REPO" && go build -o "$RUNDIR/haobs" ./cmd/haobs)

run_option() {
  local option="$1"
  echo "=== option: $option"
  "$CLUSTER" start 3 "$option"
  # The observatory polls throughout the run; -out rewrites the
  # snapshot atomically every poll, so whatever survives the kill below
  # is the spectrum as of the final poll — partition view included.
  "$RUNDIR/haobs" -targets "$TARGETS" -interval 2s \
    -out "$RUNDIR/$option.spectrum.json" \
    >"$RUNDIR/$option.haobs.txt" 2>&1 &
  local obs_pid=$!
  "$RUNDIR/haload" -targets "$TARGETS" -clients 24 -duration ${DURATION}s \
    -quiet -out "$RUNDIR/$option.json" &
  local load_pid=$!
  sleep 10
  "$CLUSTER" kill9 2
  sleep 8
  "$CLUSTER" restart 2
  sleep 8
  "$CLUSTER" partition 0 1
  sleep 8
  "$CLUSTER" partition 0 0
  wait "$load_pid"
  kill "$obs_pid" 2>/dev/null || true
  wait "$obs_pid" 2>/dev/null || true
  "$CLUSTER" stop
  sleep 1
}

# summarize <option.json>: per-phase mean commits/s and aborts/s from
# the timeline. Tick objects are the only place "second" appears, and
# within one the fields arrive in order second, committed, aborted.
summarize() {
  awk '
    function phase(s) {
      if (s <= 10) return "healthy";
      if (s <= 18) return "node 2 down (kill -9)";
      if (s <= 26) return "node 2 recovering";
      if (s <= 34) return "central office partitioned";
      return "healed";
    }
    /"second":/   { sec = $2 + 0; intick = 1; next }
    /"committed":/ { if (intick) c = $2 + 0; next }
    /"aborted":/  { if (intick) a = $2 + 0; next }
    /"failed":/   {
      if (!intick) next
      p = phase(sec)
      commits[p] += c; aborts[p] += a; fails[p] += $2 + 0; n[p]++
      intick = 0
    }
    END {
      split("healthy|node 2 down (kill -9)|node 2 recovering|central office partitioned|healed", ph, "|")
      for (i = 1; i <= 5; i++) {
        p = ph[i]
        if (n[p] == 0) continue
        printf "%s;%.0f;%.0f;%.0f\n", p, commits[p] / n[p], aborts[p] / n[p], fails[p] / n[p]
      }
    }
  ' "$1"
}

MD="$RUNDIR/availability.md"
{
  echo "| Phase | Option | Commits/s | Aborts/s | Failed/s |"
  echo "|---|---|---:|---:|---:|"
} >"$MD"

for option in $OPTIONS; do
  run_option "$option"
  summarize "$RUNDIR/$option.json" |
    while IFS=';' read -r phase commits aborts fails; do
      echo "| $phase | $option | $commits | $aborts | $fails |" >>"$MD"
    done
done

echo
echo "=== availability summary ($RUNDIR/availability.md):"
cat "$MD"
