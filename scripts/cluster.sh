#!/usr/bin/env bash
# cluster.sh — launch and manage a local multi-process fragdb cluster.
#
#   scripts/cluster.sh start [n] [option] [hanode flags...]
#                                           start n hanode processes
#                                           (default 3, unrestricted);
#                                           trailing flags pass through
#                                           to every hanode (and to
#                                           restarts)
#   scripts/cluster.sh stop                 SIGTERM every node
#   scripts/cluster.sh kill9 <id>           kill -9 one node
#   scripts/cluster.sh restart <id>         relaunch a killed node
#   scripts/cluster.sh drop <id> <peer> <1|0>  set/clear a drop rule
#   scripts/cluster.sh partition <id> <1|0> isolate/heal node <id>
#                                           (drop rules on both sides)
#   scripts/cluster.sh status               per-node /healthz
#
# State (pids, logs, the built hanode binary) lives in $RUNDIR, default
# /tmp/fragdb-cluster. Engine ports start at $ENGINE_BASE (7100), HTTP
# ports at $HTTP_BASE (8100).
set -euo pipefail

RUNDIR="${RUNDIR:-/tmp/fragdb-cluster}"
ENGINE_BASE="${ENGINE_BASE:-7100}"
HTTP_BASE="${HTTP_BASE:-8100}"
HOST=127.0.0.1
REPO="$(cd "$(dirname "$0")/.." && pwd)"

engine_addr() { echo "$HOST:$((ENGINE_BASE + $1))"; }
http_addr()   { echo "$HOST:$((HTTP_BASE + $1))"; }

peers_list() {
  local n="$1" out="" i
  for ((i = 0; i < n; i++)); do
    out+="${out:+,}$(engine_addr "$i")"
  done
  echo "$out"
}

launch_node() {
  local id="$1" n="$2" option="$3"
  local extra=()
  [ -s "$RUNDIR/extra" ] && mapfile -t extra <"$RUNDIR/extra"
  "$RUNDIR/hanode" \
    -id "$id" \
    -peers "$(peers_list "$n")" \
    -http "$(http_addr "$id")" \
    -option "$option" \
    ${extra[@]+"${extra[@]}"} \
    >>"$RUNDIR/node$id.log" 2>&1 &
  echo $! >"$RUNDIR/node$id.pid"
}

cmd_start() {
  local n="${1:-3}" option="${2:-unrestricted}"
  [ $# -gt 0 ] && shift
  [ $# -gt 0 ] && shift
  mkdir -p "$RUNDIR"
  rm -f "$RUNDIR"/node*.pid "$RUNDIR"/node*.log
  echo "$n" >"$RUNDIR/n"
  echo "$option" >"$RUNDIR/option"
  if [ $# -gt 0 ]; then
    printf '%s\n' "$@" >"$RUNDIR/extra"
  else
    : >"$RUNDIR/extra"
  fi
  (cd "$REPO" && go build -o "$RUNDIR/hanode" ./cmd/hanode)
  local i
  for ((i = 0; i < n; i++)); do
    launch_node "$i" "$n" "$option"
  done
  # Wait for every HTTP endpoint to answer.
  for ((i = 0; i < n; i++)); do
    for _ in $(seq 1 50); do
      curl -fsS "http://$(http_addr "$i")/healthz" >/dev/null 2>&1 && break
      sleep 0.1
    done
  done
  echo "cluster up: $n nodes, option=$option, http $(http_addr 0)..$(http_addr $((n - 1)))"
}

cmd_stop() {
  local pidfile pid
  for pidfile in "$RUNDIR"/node*.pid; do
    [ -e "$pidfile" ] || continue
    pid=$(cat "$pidfile")
    kill "$pid" 2>/dev/null || true
    rm -f "$pidfile"
  done
  echo "cluster stopped"
}

cmd_kill9() {
  local id="$1" pid
  pid=$(cat "$RUNDIR/node$id.pid")
  kill -9 "$pid"
  echo "node $id killed (pid $pid)"
}

cmd_restart() {
  local id="$1"
  launch_node "$id" "$(cat "$RUNDIR/n")" "$(cat "$RUNDIR/option")"
  echo "node $id relaunched (pid $(cat "$RUNDIR/node$id.pid"))"
}

cmd_drop() {
  local id="$1" peer="$2" drop="$3"
  curl -fsS -X POST "http://$(http_addr "$id")/admin/drop?peer=$peer&drop=$drop"
}

cmd_partition() {
  local id="$1" drop="$2" n i
  n=$(cat "$RUNDIR/n")
  for ((i = 0; i < n; i++)); do
    [ "$i" = "$id" ] && continue
    cmd_drop "$id" "$i" "$drop" || true
    cmd_drop "$i" "$id" "$drop" || true
  done
  if [ "$drop" = 1 ]; then
    echo "node $id isolated"
  else
    echo "node $id healed"
  fi
}

cmd_status() {
  local n i
  n=$(cat "$RUNDIR/n")
  for ((i = 0; i < n; i++)); do
    echo "--- node $i ($(http_addr "$i")):"
    curl -fsS "http://$(http_addr "$i")/healthz" 2>/dev/null || echo "  unreachable"
  done
}

case "${1:-}" in
start)     shift; cmd_start "$@" ;;
stop)      shift; cmd_stop ;;
kill9)     shift; cmd_kill9 "$@" ;;
restart)   shift; cmd_restart "$@" ;;
drop)      shift; cmd_drop "$@" ;;
partition) shift; cmd_partition "$@" ;;
status)    shift; cmd_status ;;
*)
  sed -n '2,16p' "$0"
  exit 2
  ;;
esac
